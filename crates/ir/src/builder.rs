//! Ergonomic construction of modules and functions.
//!
//! [`FunctionBuilder`] appends instructions to a *current block* and offers
//! structured-control-flow combinators (`for_loop`, `while_loop`,
//! `if_then`, `spin_while_eq`, …) so corpus programs read like the
//! pseudo-code in the paper rather than raw CFG plumbing.

use crate::func::{Block, Function, Inst};
use crate::ids::{BlockId, FuncId, GlobalId, InstId, LocalId};
use crate::inst::{BinOp, CmpOp, FenceKind, InstKind, Intrinsic, RmwOp};
use crate::module::{GlobalDecl, Module};
use crate::value::Value;

/// Builds a [`Module`]: declares globals and collects functions.
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declares a zero-initialized global of `words` cells.
    pub fn global(&mut self, name: impl Into<String>, words: u32) -> GlobalId {
        self.global_init(name, words, Vec::new())
    }

    /// Declares a global with explicit initial contents.
    pub fn global_init(&mut self, name: impl Into<String>, words: u32, init: Vec<i64>) -> GlobalId {
        let name = name.into();
        assert!(
            self.module.global_by_name(&name).is_none(),
            "duplicate global {name}"
        );
        assert!(init.len() <= words as usize, "init longer than region");
        let id = GlobalId::new(self.module.globals.len());
        self.module.globals.push(GlobalDecl { name, words, init });
        id
    }

    /// Forward-declares a function so mutually recursive calls can name it.
    pub fn declare_func(&mut self, name: impl Into<String>, num_params: u16) -> FuncId {
        let name = name.into();
        assert!(
            self.module.func_by_name(&name).is_none(),
            "duplicate function {name}"
        );
        let id = FuncId::new(self.module.funcs.len());
        let mut placeholder = Function::new(name, num_params);
        // A declared-but-undefined body traps if executed.
        placeholder.blocks[0].insts.clear();
        self.module.funcs.push(placeholder);
        id
    }

    /// Installs the body of a previously declared function.
    pub fn define_func(&mut self, id: FuncId, func: Function) {
        let slot = &mut self.module.funcs[id.index()];
        assert_eq!(slot.name, func.name, "define_func name mismatch");
        assert_eq!(
            slot.num_params, func.num_params,
            "define_func arity mismatch"
        );
        *slot = func;
    }

    /// Declares and defines in one step.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = self.declare_func(func.name.clone(), func.num_params);
        self.module.funcs[id.index()] = func;
        id
    }

    /// Finalizes the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds one [`Function`].
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    fresh: u32,
}

impl FunctionBuilder {
    /// Starts a function with an empty entry block as the current block.
    pub fn new(name: impl Into<String>, num_params: u16) -> Self {
        FunctionBuilder {
            func: Function::new(name, num_params),
            current: BlockId::new(0),
            fresh: 0,
        }
    }

    /// Declares a mutable local register slot.
    pub fn local(&mut self, name: impl Into<String>) -> LocalId {
        let id = LocalId::new(self.func.locals.len());
        self.func.locals.push(name.into());
        id
    }

    fn fresh_name(&mut self, stem: &str) -> String {
        self.fresh += 1;
        format!("{stem}.{}", self.fresh)
    }

    /// Creates a new (empty) block without switching to it.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId::new(self.func.blocks.len());
        self.func.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// Makes `block` the insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// `true` if the current block already has a terminator.
    pub fn current_terminated(&self) -> bool {
        self.func
            .block(self.current)
            .insts
            .last()
            .is_some_and(|&i| self.func.inst(i).kind.is_terminator())
    }

    fn push(&mut self, kind: InstKind) -> InstId {
        assert!(
            !self.current_terminated(),
            "block {} of {} already terminated",
            self.current,
            self.func.name
        );
        let id = InstId::new(self.func.insts.len());
        self.func.insts.push(Inst { kind });
        self.func.blocks[self.current.index()].insts.push(id);
        id
    }

    fn push_val(&mut self, kind: InstKind) -> Value {
        Value::Inst(self.push(kind))
    }

    // ---- memory ----

    /// `load addr`.
    pub fn load(&mut self, addr: impl Into<Value>) -> Value {
        self.push_val(InstKind::Load { addr: addr.into() })
    }

    /// `store addr, val`.
    pub fn store(&mut self, addr: impl Into<Value>, val: impl Into<Value>) {
        self.push(InstKind::Store {
            addr: addr.into(),
            val: val.into(),
        });
    }

    /// `rmw op addr, val` — returns the old value.
    pub fn rmw(&mut self, op: RmwOp, addr: impl Into<Value>, val: impl Into<Value>) -> Value {
        self.push_val(InstKind::AtomicRmw {
            op,
            addr: addr.into(),
            val: val.into(),
        })
    }

    /// `cas addr, expected, new` — returns the old value.
    pub fn cas(
        &mut self,
        addr: impl Into<Value>,
        expected: impl Into<Value>,
        new: impl Into<Value>,
    ) -> Value {
        self.push_val(InstKind::AtomicCas {
            addr: addr.into(),
            expected: expected.into(),
            new: new.into(),
        })
    }

    /// Inserts an explicit fence (used for `Manual` baselines).
    pub fn fence(&mut self, kind: FenceKind) {
        self.push(InstKind::Fence { kind });
    }

    /// `alloc words` from the shared heap.
    pub fn alloc(&mut self, words: impl Into<Value>) -> Value {
        self.push_val(InstKind::Alloc {
            words: words.into(),
        })
    }

    // ---- computation ----

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        self.push_val(InstKind::Bin {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        })
    }

    /// `lhs + rhs`.
    pub fn add(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Add, l, r)
    }

    /// `lhs - rhs`.
    pub fn sub(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Sub, l, r)
    }

    /// `lhs * rhs`.
    pub fn mul(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Mul, l, r)
    }

    /// `lhs / rhs` (0 on division by zero).
    pub fn div(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Div, l, r)
    }

    /// `lhs % rhs` (0 on division by zero).
    pub fn rem(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Rem, l, r)
    }

    /// Bitwise and.
    pub fn and(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::And, l, r)
    }

    /// Bitwise or.
    pub fn or(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Or, l, r)
    }

    /// Bitwise xor.
    pub fn xor(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Xor, l, r)
    }

    /// Shift left (shift count masked to 6 bits).
    pub fn shl(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Shl, l, r)
    }

    /// Arithmetic shift right (shift count masked to 6 bits).
    pub fn shr(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.bin(BinOp::Shr, l, r)
    }

    /// Generic comparison (0/1 result).
    pub fn cmp(&mut self, op: CmpOp, lhs: impl Into<Value>, rhs: impl Into<Value>) -> Value {
        self.push_val(InstKind::Cmp {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        })
    }

    /// `lhs == rhs`.
    pub fn eq(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Eq, l, r)
    }

    /// `lhs != rhs`.
    pub fn ne(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Ne, l, r)
    }

    /// `lhs < rhs` (signed).
    pub fn lt(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Lt, l, r)
    }

    /// `lhs <= rhs` (signed).
    pub fn le(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Le, l, r)
    }

    /// `lhs > rhs` (signed).
    pub fn gt(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Gt, l, r)
    }

    /// `lhs >= rhs` (signed).
    pub fn ge(&mut self, l: impl Into<Value>, r: impl Into<Value>) -> Value {
        self.cmp(CmpOp::Ge, l, r)
    }

    /// `select cond, a, b`.
    pub fn select(
        &mut self,
        cond: impl Into<Value>,
        t: impl Into<Value>,
        e: impl Into<Value>,
    ) -> Value {
        self.push_val(InstKind::Select {
            cond: cond.into(),
            then_val: t.into(),
            else_val: e.into(),
        })
    }

    /// Address arithmetic `base + index` (in words).
    pub fn gep(&mut self, base: impl Into<Value>, index: impl Into<Value>) -> Value {
        self.push_val(InstKind::Gep {
            base: base.into(),
            index: index.into(),
        })
    }

    // ---- locals ----

    /// Reads a local register.
    pub fn read_local(&mut self, local: LocalId) -> Value {
        self.push_val(InstKind::ReadLocal { local })
    }

    /// Writes a local register.
    pub fn write_local(&mut self, local: LocalId, val: impl Into<Value>) {
        self.push(InstKind::WriteLocal {
            local,
            val: val.into(),
        });
    }

    // ---- calls ----

    /// Calls a function in the same module.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>) -> Value {
        self.push_val(InstKind::Call { callee, args })
    }

    /// Calls an intrinsic.
    pub fn intrinsic(&mut self, intr: Intrinsic, args: Vec<Value>) -> InstId {
        self.push(InstKind::CallIntrinsic { intr, args })
    }

    /// `thread_id()`.
    pub fn thread_id(&mut self) -> Value {
        Value::Inst(self.intrinsic(Intrinsic::ThreadId, vec![]))
    }

    /// `num_threads()`.
    pub fn num_threads(&mut self) -> Value {
        Value::Inst(self.intrinsic(Intrinsic::NumThreads, vec![]))
    }

    /// `lock_acquire(addr)`.
    pub fn lock_acquire(&mut self, addr: impl Into<Value>) {
        self.intrinsic(Intrinsic::LockAcquire, vec![addr.into()]);
    }

    /// `lock_release(addr)`.
    pub fn lock_release(&mut self, addr: impl Into<Value>) {
        self.intrinsic(Intrinsic::LockRelease, vec![addr.into()]);
    }

    /// `barrier_wait(addr, n)`.
    pub fn barrier_wait(&mut self, addr: impl Into<Value>, n: impl Into<Value>) {
        self.intrinsic(Intrinsic::BarrierWait, vec![addr.into(), n.into()]);
    }

    // ---- terminators ----

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(InstKind::Br { target });
    }

    /// Conditional branch.
    pub fn condbr(&mut self, cond: impl Into<Value>, then_bb: BlockId, else_bb: BlockId) {
        self.push(InstKind::CondBr {
            cond: cond.into(),
            then_bb,
            else_bb,
        });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Value>) {
        self.push(InstKind::Ret { val });
    }

    // ---- structured control flow ----

    /// `for i in from..to { body(i) }` with unit stride.
    ///
    /// The induction variable lives in a fresh local; `body` receives its
    /// value for the current iteration. After the call, the insertion point
    /// is the loop exit block.
    pub fn for_loop(
        &mut self,
        from: impl Into<Value>,
        to: impl Into<Value>,
        body: impl FnOnce(&mut Self, Value),
    ) {
        let from = from.into();
        let to = to.into();
        let name = self.fresh_name("i");
        let ivar = self.local(name);
        let header_name = self.fresh_name("for.header");
        let header = self.new_block(header_name);
        let body_bb_name = self.fresh_name("for.body");
        let body_bb = self.new_block(body_bb_name);
        let exit_name = self.fresh_name("for.exit");
        let exit = self.new_block(exit_name);

        self.write_local(ivar, from);
        self.br(header);

        self.switch_to(header);
        let iv = self.read_local(ivar);
        let c = self.lt(iv, to);
        self.condbr(c, body_bb, exit);

        self.switch_to(body_bb);
        body(self, iv);
        if !self.current_terminated() {
            let iv2 = self.read_local(ivar);
            let next = self.add(iv2, 1);
            self.write_local(ivar, next);
            self.br(header);
        }

        self.switch_to(exit);
    }

    /// `while cond() { body() }`. `cond` is re-evaluated each iteration.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Value,
        body: impl FnOnce(&mut Self),
    ) {
        let header_name = self.fresh_name("while.header");
        let header = self.new_block(header_name);
        let body_bb_name = self.fresh_name("while.body");
        let body_bb = self.new_block(body_bb_name);
        let exit_name = self.fresh_name("while.exit");
        let exit = self.new_block(exit_name);

        self.br(header);
        self.switch_to(header);
        let c = cond(self);
        self.condbr(c, body_bb, exit);

        self.switch_to(body_bb);
        body(self);
        if !self.current_terminated() {
            self.br(header);
        }
        self.switch_to(exit);
    }

    /// Busy-waits while `*addr == val` — the classic ad hoc flag spin
    /// (`while (flag == 0);`). The spinning load feeds the loop branch, so
    /// it is a textbook *control acquire*.
    pub fn spin_while_eq(&mut self, addr: impl Into<Value>, val: impl Into<Value>) {
        let addr = addr.into();
        let val = val.into();
        self.while_loop(
            |b| {
                let cur = b.load(addr);
                b.eq(cur, val)
            },
            |_| {},
        );
    }

    /// `if cond { then_f() }`. Insertion point ends at the join block.
    pub fn if_then(&mut self, cond: impl Into<Value>, then_f: impl FnOnce(&mut Self)) {
        let then_bb_name = self.fresh_name("if.then");
        let then_bb = self.new_block(then_bb_name);
        let join_name = self.fresh_name("if.join");
        let join = self.new_block(join_name);
        self.condbr(cond, then_bb, join);
        self.switch_to(then_bb);
        then_f(self);
        if !self.current_terminated() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// `if cond { then_f() } else { else_f() }`.
    pub fn if_then_else(
        &mut self,
        cond: impl Into<Value>,
        then_f: impl FnOnce(&mut Self),
        else_f: impl FnOnce(&mut Self),
    ) {
        let then_bb_name = self.fresh_name("if.then");
        let then_bb = self.new_block(then_bb_name);
        let else_bb_name = self.fresh_name("if.else");
        let else_bb = self.new_block(else_bb_name);
        let join_name = self.fresh_name("if.join");
        let join = self.new_block(join_name);
        self.condbr(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then_f(self);
        if !self.current_terminated() {
            self.br(join);
        }
        self.switch_to(else_bb);
        else_f(self);
        if !self.current_terminated() {
            self.br(join);
        }
        self.switch_to(join);
    }

    /// Finalizes. Panics if any block lacks a terminator (catching builder
    /// bugs early; full checking is in [`crate::verify`]).
    pub fn build(self) -> Function {
        for (i, b) in self.func.blocks.iter().enumerate() {
            let ok = b
                .insts
                .last()
                .is_some_and(|&iid| self.func.inst(iid).kind.is_terminator());
            assert!(
                ok,
                "block bb{i} ({}) of function {} lacks a terminator",
                b.name, self.func.name
            );
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn straight_line() {
        let mut fb = FunctionBuilder::new("f", 1);
        let g = GlobalId::new(0);
        let v = fb.load(g);
        let w = fb.add(v, Value::Arg(0));
        fb.store(g, w);
        fb.ret(None);
        let f = fb.build();
        assert_eq!(f.num_insts(), 4);
        assert_eq!(f.num_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "lacks a terminator")]
    fn unterminated_block_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.load(Value::c(0));
        let _ = fb.build();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn append_after_terminator_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.ret(None);
        fb.load(Value::c(0));
    }

    #[test]
    fn for_loop_shape() {
        let mut fb = FunctionBuilder::new("f", 0);
        let g = GlobalId::new(0);
        fb.for_loop(0i64, 10i64, |b, i| {
            let p = b.gep(g, i);
            b.store(p, i);
        });
        fb.ret(None);
        let f = fb.build();
        // entry + header + body + exit
        assert_eq!(f.num_blocks(), 4);
        assert!(verify_function(&f, None).is_empty(), "loop verifies");
    }

    #[test]
    fn nested_if_and_while() {
        let mut fb = FunctionBuilder::new("f", 1);
        let g = GlobalId::new(0);
        fb.while_loop(
            |b| {
                let v = b.load(g);
                b.ne(v, 0)
            },
            |b| {
                let v = b.load(g);
                let c = b.gt(v, 5);
                b.if_then_else(
                    c,
                    |b| b.store(g, 0i64),
                    |b| {
                        let v2 = b.load(g);
                        let inc = b.add(v2, 1);
                        b.store(g, inc);
                    },
                );
            },
        );
        fb.ret(None);
        let f = fb.build();
        assert!(verify_function(&f, None).is_empty());
    }

    #[test]
    fn spin_while_eq_creates_backedge() {
        let mut fb = FunctionBuilder::new("f", 0);
        let g = GlobalId::new(0);
        fb.spin_while_eq(g, 0i64);
        fb.ret(None);
        let f = fb.build();
        let cfg = crate::cfg::Cfg::new(&f);
        let reach = crate::cfg::Reachability::new(&cfg);
        // The spin header must reach itself (it's in a cycle).
        let cyclic = (0..f.num_blocks()).any(|b| reach.reaches(BlockId::new(b), BlockId::new(b)));
        assert!(cyclic, "spin loop forms a CFG cycle");
    }

    #[test]
    fn module_builder_declare_define() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare_func("callee", 1);
        let mut fb = FunctionBuilder::new("caller", 0);
        let r = fb.call(callee, vec![Value::c(7)]);
        fb.ret(Some(r));
        mb.add_func(fb.build());
        let mut fb2 = FunctionBuilder::new("callee", 1);
        let v = fb2.add(Value::Arg(0), 1i64);
        fb2.ret(Some(v));
        mb.define_func(callee, fb2.build());
        let m = mb.finish();
        assert_eq!(m.funcs.len(), 2);
        assert!(crate::verify::verify_module(&m).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate global")]
    fn duplicate_global_panics() {
        let mut mb = ModuleBuilder::new("m");
        mb.global("x", 1);
        mb.global("x", 1);
    }
}
