//! Instruction kinds and their static classification.

use crate::ids::{BlockId, FuncId, LocalId};
use crate::value::Value;
use std::fmt;

/// Binary arithmetic / bitwise operators.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

/// Signed comparison operators; results are 0 or 1.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Atomic read-modify-write operators.
///
/// Per the paper (§3), RMW operations are modelled as a read followed by a
/// write to the same location; the analyses treat them exactly that way.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum RmwOp {
    Add,
    Exchange,
    And,
    Or,
}

/// The two enforcement mechanisms of the paper's x86-TSO backend.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum FenceKind {
    /// A full memory fence (x86 `MFENCE`): drains the store buffer, ordering
    /// `w → r`. Has real runtime cost.
    Full,
    /// A compiler directive (empty memory-clobbering asm): prevents compiler
    /// reordering but has *no presence in the final binary* and zero runtime
    /// cost. Enforces `r→r`, `r→w`, `w→w` orderings which x86-TSO hardware
    /// already preserves.
    Compiler,
}

/// Built-in operations the IR can call without a user-defined body.
///
/// `LockAcquire`/`LockRelease`/`BarrierWait` model *library* synchronization
/// (pthread locks and barriers). The paper's benchmarks are "well
/// synchronized by library calls to locks and barriers" except for their ad
/// hoc synchronization; library internals are assumed correctly fenced, so
/// these intrinsics are synchronization boundaries for ordering generation
/// and perform the corresponding fencing in the simulator.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Intrinsic {
    /// `lock_acquire(addr)` — spin-acquire the word at `addr`.
    LockAcquire,
    /// `lock_release(addr)` — release the word at `addr`.
    LockRelease,
    /// `barrier_wait(addr, n)` — central sense-reversing barrier for `n` threads.
    BarrierWait,
    /// Returns the executing thread's id (0-based).
    ThreadId,
    /// Returns the number of threads in the launch.
    NumThreads,
    /// Debug print of a single value; no memory semantics.
    Print,
}

impl Intrinsic {
    /// The textual name used by the printer/parser.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::LockAcquire => "lock_acquire",
            Intrinsic::LockRelease => "lock_release",
            Intrinsic::BarrierWait => "barrier_wait",
            Intrinsic::ThreadId => "thread_id",
            Intrinsic::NumThreads => "num_threads",
            Intrinsic::Print => "print",
        }
    }

    /// Parses an intrinsic from its textual name.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "lock_acquire" => Intrinsic::LockAcquire,
            "lock_release" => Intrinsic::LockRelease,
            "barrier_wait" => Intrinsic::BarrierWait,
            "thread_id" => Intrinsic::ThreadId,
            "num_threads" => Intrinsic::NumThreads,
            "print" => Intrinsic::Print,
            _ => return None,
        })
    }

    /// Number of arguments the intrinsic expects.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::LockAcquire | Intrinsic::LockRelease | Intrinsic::Print => 1,
            Intrinsic::BarrierWait => 2,
            Intrinsic::ThreadId | Intrinsic::NumThreads => 0,
        }
    }

    /// `true` if the intrinsic is a synchronization boundary: orderings do
    /// not need to span across it (the library is assumed correctly fenced).
    pub fn is_sync_boundary(self) -> bool {
        matches!(
            self,
            Intrinsic::LockAcquire | Intrinsic::LockRelease | Intrinsic::BarrierWait
        )
    }
}

/// One IR instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InstKind {
    // ---- shared memory ----
    /// `%r = load addr` — read one word of shared memory.
    Load { addr: Value },
    /// `store addr, val` — write one word of shared memory.
    Store { addr: Value, val: Value },
    /// `%r = rmw <op> addr, val` — atomic read-modify-write; result is the
    /// old value. Counts as a read followed by a write.
    AtomicRmw { op: RmwOp, addr: Value, val: Value },
    /// `%r = cas addr, expected, new` — atomic compare-and-swap; result is
    /// the old value (success iff old == expected). Counts as a read
    /// followed by a (conditional) write.
    AtomicCas {
        addr: Value,
        expected: Value,
        new: Value,
    },
    /// A memory fence (inserted by the placement pass, or hand-placed for
    /// the `Manual` baseline).
    Fence { kind: FenceKind },
    /// `%r = alloc words` — bump-allocate `words` fresh cells from the
    /// shared heap; result is the base address. One abstract location per
    /// syntactic site for the points-to analysis.
    Alloc { words: Value },

    // ---- pure computation ----
    /// `%r = <op> lhs, rhs`.
    Bin { op: BinOp, lhs: Value, rhs: Value },
    /// `%r = cmp <op> lhs, rhs` — 0/1 result.
    Cmp { op: CmpOp, lhs: Value, rhs: Value },
    /// `%r = select cond, a, b`.
    Select {
        cond: Value,
        then_val: Value,
        else_val: Value,
    },
    /// `%r = gep base, index` — address arithmetic (`base + index` in words).
    Gep { base: Value, index: Value },

    // ---- local registers ----
    /// `%r = read_local l` — read a mutable function-local register.
    ReadLocal { local: LocalId },
    /// `write_local l, val`.
    WriteLocal { local: LocalId, val: Value },

    // ---- calls ----
    /// `%r = call f(args...)` — call a function in the same module.
    Call { callee: FuncId, args: Vec<Value> },
    /// `%r = intrinsic name(args...)`.
    CallIntrinsic { intr: Intrinsic, args: Vec<Value> },

    // ---- terminators ----
    /// Unconditional branch.
    Br { target: BlockId },
    /// Conditional branch: non-zero condition takes `then_bb`.
    CondBr {
        cond: Value,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Function return.
    Ret { val: Option<Value> },
}

impl InstKind {
    /// `true` if the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Br { .. } | InstKind::CondBr { .. } | InstKind::Ret { .. }
        )
    }

    /// `true` if the instruction produces a usable result value.
    pub fn has_result(&self) -> bool {
        match self {
            InstKind::Load { .. }
            | InstKind::AtomicRmw { .. }
            | InstKind::AtomicCas { .. }
            | InstKind::Alloc { .. }
            | InstKind::Bin { .. }
            | InstKind::Cmp { .. }
            | InstKind::Select { .. }
            | InstKind::Gep { .. }
            | InstKind::ReadLocal { .. }
            | InstKind::Call { .. } => true,
            InstKind::CallIntrinsic { intr, .. } => {
                matches!(intr, Intrinsic::ThreadId | Intrinsic::NumThreads)
            }
            InstKind::Store { .. }
            | InstKind::Fence { .. }
            | InstKind::WriteLocal { .. }
            | InstKind::Br { .. }
            | InstKind::CondBr { .. }
            | InstKind::Ret { .. } => false,
        }
    }

    /// `true` if the instruction reads shared memory (the "read part" of an
    /// RMW/CAS included, per §3 of the paper).
    pub fn is_mem_read(&self) -> bool {
        matches!(
            self,
            InstKind::Load { .. } | InstKind::AtomicRmw { .. } | InstKind::AtomicCas { .. }
        )
    }

    /// `true` if the instruction writes shared memory.
    pub fn is_mem_write(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. } | InstKind::AtomicRmw { .. } | InstKind::AtomicCas { .. }
        )
    }

    /// `true` if the instruction accesses shared memory at all.
    pub fn is_mem_access(&self) -> bool {
        self.is_mem_read() || self.is_mem_write()
    }

    /// The address operand of a memory access ("dereference"), if any.
    pub fn mem_addr(&self) -> Option<Value> {
        match self {
            InstKind::Load { addr }
            | InstKind::Store { addr, .. }
            | InstKind::AtomicRmw { addr, .. }
            | InstKind::AtomicCas { addr, .. } => Some(*addr),
            _ => None,
        }
    }

    /// `true` for conditional branches (the control-acquire slice roots).
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, InstKind::CondBr { .. })
    }

    /// `true` for address calculations (the address-acquire slice roots).
    pub fn is_address_calculation(&self) -> bool {
        matches!(self, InstKind::Gep { .. })
    }

    /// Invokes `f` on every operand value.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Load { addr } => f(*addr),
            InstKind::Store { addr, val } => {
                f(*addr);
                f(*val);
            }
            InstKind::AtomicRmw { addr, val, .. } => {
                f(*addr);
                f(*val);
            }
            InstKind::AtomicCas {
                addr,
                expected,
                new,
            } => {
                f(*addr);
                f(*expected);
                f(*new);
            }
            InstKind::Fence { .. } => {}
            InstKind::Alloc { words } => f(*words),
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Select {
                cond,
                then_val,
                else_val,
            } => {
                f(*cond);
                f(*then_val);
                f(*else_val);
            }
            InstKind::Gep { base, index } => {
                f(*base);
                f(*index);
            }
            InstKind::ReadLocal { .. } => {}
            InstKind::WriteLocal { val, .. } => f(*val),
            InstKind::Call { args, .. } | InstKind::CallIntrinsic { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Br { .. } => {}
            InstKind::CondBr { cond, .. } => f(*cond),
            InstKind::Ret { val } => {
                if let Some(v) = val {
                    f(*v);
                }
            }
        }
    }

    /// Collects operands into a `Vec` (convenience for non-hot paths).
    pub fn operands(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(3);
        self.for_each_operand(|v| out.push(v));
        out
    }

    /// Successor blocks for terminators; empty for non-terminators and `ret`.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Br { target } => vec![*target],
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            _ => Vec::new(),
        }
    }
}

impl BinOp {
    /// Textual mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parses a mnemonic.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }

    /// Evaluates the operator on two words (wrapping semantics; division by
    /// zero yields 0, matching a forgiving hardware model).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
        }
    }
}

impl CmpOp {
    /// Textual mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parses a mnemonic.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return None,
        })
    }

    /// Evaluates the comparison, returning 0 or 1.
    pub fn eval(self, a: i64, b: i64) -> i64 {
        let r = match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        };
        r as i64
    }
}

impl RmwOp {
    /// Textual mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            RmwOp::Add => "add",
            RmwOp::Exchange => "xchg",
            RmwOp::And => "and",
            RmwOp::Or => "or",
        }
    }

    /// Parses a mnemonic.
    pub fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "add" => RmwOp::Add,
            "xchg" => RmwOp::Exchange,
            "and" => RmwOp::And,
            "or" => RmwOp::Or,
            _ => return None,
        })
    }

    /// Computes the new stored value from old value and operand.
    pub fn eval(self, old: i64, operand: i64) -> i64 {
        match self {
            RmwOp::Add => old.wrapping_add(operand),
            RmwOp::Exchange => operand,
            RmwOp::And => old & operand,
            RmwOp::Or => old | operand,
        }
    }
}

impl fmt::Display for FenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FenceKind::Full => write!(f, "full"),
            FenceKind::Compiler => write!(f, "compiler"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let ld = InstKind::Load {
            addr: Value::Arg(0),
        };
        assert!(ld.is_mem_read() && !ld.is_mem_write() && ld.has_result());
        let st = InstKind::Store {
            addr: Value::Arg(0),
            val: Value::c(1),
        };
        assert!(st.is_mem_write() && !st.is_mem_read() && !st.has_result());
        let rmw = InstKind::AtomicRmw {
            op: RmwOp::Add,
            addr: Value::Arg(0),
            val: Value::c(1),
        };
        assert!(
            rmw.is_mem_read() && rmw.is_mem_write(),
            "rmw = read + write"
        );
        assert!(InstKind::Ret { val: None }.is_terminator());
    }

    #[test]
    fn operand_iteration() {
        let cas = InstKind::AtomicCas {
            addr: Value::Arg(0),
            expected: Value::c(0),
            new: Value::c(1),
        };
        assert_eq!(
            cas.operands(),
            vec![Value::Arg(0), Value::c(0), Value::c(1)]
        );
        assert_eq!(cas.mem_addr(), Some(Value::Arg(0)));
    }

    #[test]
    fn successors_of_terminators() {
        let br = InstKind::Br {
            target: BlockId::new(2),
        };
        assert_eq!(br.successors(), vec![BlockId::new(2)]);
        let cb = InstKind::CondBr {
            cond: Value::c(1),
            then_bb: BlockId::new(0),
            else_bb: BlockId::new(1),
        };
        assert_eq!(cb.successors().len(), 2);
        assert!(InstKind::Ret { val: None }.successors().is_empty());
    }

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), 5);
        assert_eq!(BinOp::Div.eval(7, 0), 0, "div-by-zero is forgiving");
        assert_eq!(BinOp::Shl.eval(1, 65), 2, "shift masked to 6 bits");
        assert_eq!(BinOp::from_name("mul"), Some(BinOp::Mul));
        assert_eq!(BinOp::from_name("nope"), None);
    }

    #[test]
    fn cmp_and_rmw_eval() {
        assert_eq!(CmpOp::Le.eval(2, 2), 1);
        assert_eq!(CmpOp::Gt.eval(2, 2), 0);
        assert_eq!(RmwOp::Exchange.eval(5, 9), 9);
        assert_eq!(RmwOp::Add.eval(5, 9), 14);
    }

    #[test]
    fn intrinsic_roundtrip() {
        for i in [
            Intrinsic::LockAcquire,
            Intrinsic::LockRelease,
            Intrinsic::BarrierWait,
            Intrinsic::ThreadId,
            Intrinsic::NumThreads,
            Intrinsic::Print,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert!(Intrinsic::LockAcquire.is_sync_boundary());
        assert!(!Intrinsic::ThreadId.is_sync_boundary());
    }
}
