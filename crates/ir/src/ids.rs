//! Compact `u32` newtype identifiers for every IR entity.
//!
//! Following the standard compiler-engineering (and Rust perf-book) advice,
//! all cross-references inside the IR are small dense indices into `Vec`
//! side tables rather than pointers or strings.

use std::fmt;

/// Implements a dense `u32` index newtype.
macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            #[inline]
            pub fn new(index: usize) -> Self {
                debug_assert!(index <= u32::MAX as usize);
                Self(index as u32)
            }

            /// Returns the dense index this id wraps.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies an instruction within its enclosing [`crate::Function`].
    InstId,
    "%"
);
id_type!(
    /// Identifies a basic block within its enclosing [`crate::Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies a function within its enclosing [`crate::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a global memory region within its enclosing [`crate::Module`].
    GlobalId,
    "g"
);
id_type!(
    /// Identifies a mutable local register slot within its enclosing function.
    LocalId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = InstId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "%42");
        assert_eq!(format!("{:?}", BlockId::new(3)), "bb3");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert_eq!(FuncId::new(7), FuncId::new(7));
    }
}
