//! Structural well-formedness checking for functions and modules.
//!
//! The verifier catches builder and parser mistakes before they turn into
//! bogus analysis results or interpreter panics:
//!
//! * every block is non-empty and ends with exactly one terminator,
//! * no terminator appears mid-block, every instruction is in one block,
//! * operands refer to existing, result-producing instructions whose
//!   definitions dominate their uses,
//! * branch targets / locals / globals / callees are in range,
//! * intrinsic arities match.

use crate::cfg::{Cfg, Dominators};
use crate::func::Function;
use crate::ids::{BlockId, InstId};
use crate::inst::InstKind;
use crate::module::Module;
use crate::value::Value;
use std::fmt;

/// A single verifier diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name the error occurred in.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.func, self.message)
    }
}

/// Verifies a single function. `module` enables cross-function checks
/// (callee arity); pass `None` to check a function in isolation.
pub fn verify_function(func: &Function, module: Option<&Module>) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let mut err = |message: String| {
        errors.push(VerifyError {
            func: func.name.clone(),
            message,
        })
    };

    if func.entry.index() >= func.num_blocks() {
        err(format!("entry block {} out of range", func.entry));
        return errors;
    }

    // Block structure + instruction attachment.
    let mut attached = vec![false; func.num_insts()];
    for (bid, block) in func.iter_blocks() {
        if block.insts.is_empty() {
            err(format!("block {bid} is empty"));
            continue;
        }
        for (idx, &iid) in block.insts.iter().enumerate() {
            if iid.index() >= func.num_insts() {
                err(format!("block {bid} references bogus inst {iid}"));
                continue;
            }
            if attached[iid.index()] {
                err(format!("inst {iid} appears in more than one position"));
            }
            attached[iid.index()] = true;
            let is_last = idx + 1 == block.insts.len();
            let is_term = func.inst(iid).kind.is_terminator();
            if is_last && !is_term {
                err(format!("block {bid} does not end with a terminator"));
            }
            if !is_last && is_term {
                err(format!("terminator {iid} in the middle of block {bid}"));
            }
        }
    }

    // Branch targets, locals, intrinsic arity, callee arity.
    for (iid, inst) in func.iter_insts() {
        match &inst.kind {
            InstKind::Br { target } if target.index() >= func.num_blocks() => {
                err(format!("{iid}: branch target {target} out of range"));
            }
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => {
                for t in [then_bb, else_bb] {
                    if t.index() >= func.num_blocks() {
                        err(format!("{iid}: branch target {t} out of range"));
                    }
                }
            }
            InstKind::ReadLocal { local } | InstKind::WriteLocal { local, .. }
                if local.index() >= func.locals.len() =>
            {
                err(format!("{iid}: local {local} out of range"));
            }
            InstKind::CallIntrinsic { intr, args } if args.len() != intr.arity() => {
                err(format!(
                    "{iid}: intrinsic {} expects {} args, got {}",
                    intr.name(),
                    intr.arity(),
                    args.len()
                ));
            }
            InstKind::Call { callee, args } => {
                if let Some(m) = module {
                    if callee.index() >= m.funcs.len() {
                        err(format!("{iid}: callee {callee} out of range"));
                    } else {
                        let cf = m.func(*callee);
                        if args.len() != cf.num_params as usize {
                            err(format!(
                                "{iid}: call to {} expects {} args, got {}",
                                cf.name,
                                cf.num_params,
                                args.len()
                            ));
                        }
                    }
                }
            }
            _ => {}
        }
    }

    // Operand validity + def-dominates-use. The CFG/dominator build
    // below assumes the structural invariants checked above (in-range
    // branch targets, terminated blocks); on a module that already
    // failed them it could index out of bounds, so report what we have.
    if !errors.is_empty() {
        return errors;
    }
    let positions = func.positions();
    let cfg = Cfg::new(func);
    let dom = Dominators::new(&cfg);
    let check_operand =
        |use_site: InstId, use_pos: (BlockId, usize), v: Value, errors: &mut Vec<VerifyError>| {
            let mut err = |message: String| {
                errors.push(VerifyError {
                    func: func.name.clone(),
                    message,
                })
            };
            match v {
                Value::Const(_) | Value::Global(_) => {}
                Value::Arg(a) => {
                    if a >= func.num_params {
                        err(format!("{use_site}: argument arg{a} out of range"));
                    }
                }
                Value::Inst(def) => {
                    if def.index() >= func.num_insts() {
                        err(format!("{use_site}: operand {def} out of range"));
                        return;
                    }
                    if !func.inst(def).kind.has_result() {
                        err(format!("{use_site}: operand {def} produces no result"));
                        return;
                    }
                    match positions[def.index()] {
                        None => err(format!("{use_site}: operand {def} is unattached")),
                        Some(dp) => {
                            let (ub, ui) = use_pos;
                            let ok = if dp.block == ub {
                                dp.index < ui
                            } else {
                                dom.dominates(dp.block, ub)
                            };
                            if !ok {
                                err(format!(
                                    "{use_site}: use of {def} not dominated by its definition"
                                ));
                            }
                        }
                    }
                }
            }
        };
    for (bid, block) in func.iter_blocks() {
        for (idx, &iid) in block.insts.iter().enumerate() {
            if iid.index() >= func.num_insts() {
                continue;
            }
            func.inst(iid)
                .kind
                .for_each_operand(|v| check_operand(iid, (bid, idx), v, &mut errors));
        }
    }

    errors
}

/// `Result`-shaped wrapper over [`verify_module`] for gate-style callers
/// (the fleet's pre-analysis validation front door): `Ok(())` for a
/// well-formed module, otherwise every diagnostic.
pub fn verify_module_checked(module: &Module) -> Result<(), Vec<VerifyError>> {
    let errors = verify_module(module);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies every function of a module, plus global-reference ranges.
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for (_, func) in module.iter_funcs() {
        errors.extend(verify_function(func, Some(module)));
        // Global references in range.
        for (iid, inst) in func.iter_insts() {
            inst.kind.for_each_operand(|v| {
                if let Value::Global(g) = v {
                    if g.index() >= module.globals.len() {
                        errors.push(VerifyError {
                            func: func.name.clone(),
                            message: format!("{iid}: global {g} out of range"),
                        });
                    }
                }
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::func::{Block, Inst};

    #[test]
    fn accepts_well_formed() {
        let mut fb = FunctionBuilder::new("ok", 2);
        let s = fb.add(Value::Arg(0), Value::Arg(1));
        fb.ret(Some(s));
        assert!(verify_function(&fb.build(), None).is_empty());
    }

    #[test]
    fn rejects_empty_block() {
        let mut f = Function::new("bad", 0);
        f.blocks.push(Block::default());
        f.insts.push(Inst {
            kind: InstKind::Ret { val: None },
        });
        f.blocks[0].insts.push(InstId::new(0));
        let errs = verify_function(&f, None);
        assert!(errs.iter().any(|e| e.message.contains("is empty")));
    }

    #[test]
    fn rejects_use_of_non_result() {
        let mut f = Function::new("bad", 0);
        f.insts.push(Inst {
            kind: InstKind::Store {
                addr: Value::c(0),
                val: Value::c(0),
            },
        });
        f.insts.push(Inst {
            kind: InstKind::Ret {
                val: Some(Value::Inst(InstId::new(0))),
            },
        });
        f.blocks[0].insts = vec![InstId::new(0), InstId::new(1)];
        let errs = verify_function(&f, None);
        assert!(errs.iter().any(|e| e.message.contains("no result")));
    }

    #[test]
    fn rejects_use_before_def_same_block() {
        let mut f = Function::new("bad", 0);
        // %0 = add %1, c0 ; %1 = load c0 ; ret
        f.insts.push(Inst {
            kind: InstKind::Bin {
                op: crate::inst::BinOp::Add,
                lhs: Value::Inst(InstId::new(1)),
                rhs: Value::c(0),
            },
        });
        f.insts.push(Inst {
            kind: InstKind::Load { addr: Value::c(0) },
        });
        f.insts.push(Inst {
            kind: InstKind::Ret { val: None },
        });
        f.blocks[0].insts = vec![InstId::new(0), InstId::new(1), InstId::new(2)];
        let errs = verify_function(&f, None);
        assert!(errs.iter().any(|e| e.message.contains("not dominated")));
    }

    #[test]
    fn rejects_bad_arity_call() {
        let mut mb = ModuleBuilder::new("m");
        let callee = mb.declare_func("callee", 2);
        let mut fb = FunctionBuilder::new("caller", 0);
        fb.call(callee, vec![Value::c(1)]); // wrong arity
        fb.ret(None);
        mb.add_func(fb.build());
        let mut fb2 = FunctionBuilder::new("callee", 2);
        fb2.ret(None);
        mb.define_func(callee, fb2.build());
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("expects 2 args")));
    }

    #[test]
    fn rejects_bad_intrinsic_arity() {
        let mut f = Function::new("bad", 0);
        f.insts.push(Inst {
            kind: InstKind::CallIntrinsic {
                intr: crate::inst::Intrinsic::LockAcquire,
                args: vec![],
            },
        });
        f.insts.push(Inst {
            kind: InstKind::Ret { val: None },
        });
        f.blocks[0].insts = vec![InstId::new(0), InstId::new(1)];
        let errs = verify_function(&f, None);
        assert!(errs.iter().any(|e| e.message.contains("expects 1 args")));
    }

    #[test]
    fn checked_wrapper_mirrors_verify_module() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FunctionBuilder::new("f", 0);
        fb.ret(None);
        mb.add_func(fb.build());
        let good = mb.finish();
        assert!(verify_module_checked(&good).is_ok());

        let mut bad = Function::new("bad", 0);
        bad.blocks.push(Block::default());
        bad.insts.push(Inst {
            kind: InstKind::Ret { val: None },
        });
        bad.blocks[0].insts.push(InstId::new(0));
        let mut m = crate::module::Module::new("m");
        m.funcs.push(bad);
        let errs = verify_module_checked(&m).unwrap_err();
        assert!(!errs.is_empty());
    }

    #[test]
    fn rejects_out_of_range_global() {
        let mut mb = ModuleBuilder::new("m");
        let mut fb = FunctionBuilder::new("f", 0);
        fb.load(Value::Global(crate::ids::GlobalId::new(3)));
        fb.ret(None);
        mb.add_func(fb.build());
        let m = mb.finish();
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("global g3")));
    }
}
