//! Pretty-printing of modules to a stable, parseable textual form.
//!
//! The format round-trips through [`crate::parser::parse_module`]:
//!
//! ```text
//! module mp
//! global data 1
//! global flag 1
//!
//! fn producer params=0 locals=() {
//! bb0:
//!   store @data, c42
//!   store @flag, c1
//!   ret
//! }
//! ```

use crate::func::Function;
use crate::inst::InstKind;
use crate::module::Module;
use crate::value::Value;
use std::fmt::Write as _;

/// Renders a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}", module.name);
    for g in &module.globals {
        if g.init.is_empty() {
            let _ = writeln!(out, "global {} {}", g.name, g.words);
        } else {
            let inits: Vec<String> = g.init.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "global {} {} = {}", g.name, g.words, inits.join(" "));
        }
    }
    for func in &module.funcs {
        let _ = writeln!(out);
        out.push_str(&print_function(func, module));
    }
    out
}

/// Renders one function (needs the module for global/callee names).
pub fn print_function(func: &Function, module: &Module) -> String {
    let mut out = String::new();
    let local_names = unique_local_names(func);
    let _ = writeln!(
        out,
        "fn {} params={} locals=({}) {{",
        func.name,
        func.num_params,
        local_names.join(" ")
    );
    for (bid, block) in func.iter_blocks() {
        if block.name.is_empty() {
            let _ = writeln!(out, "bb{}:", bid.index());
        } else {
            let _ = writeln!(out, "bb{}: ; {}", bid.index(), block.name);
        }
        for &iid in &block.insts {
            let inst = func.inst(iid);
            out.push_str("  ");
            if inst.kind.has_result() {
                let _ = write!(out, "%{} = ", iid.index());
            }
            out.push_str(&print_inst_kind(&inst.kind, module, &local_names));
            out.push('\n');
        }
    }
    out.push_str("}\n");
    out
}

/// Sanitized, deduplicated local names used by the printer and parser.
pub fn unique_local_names(func: &Function) -> Vec<String> {
    let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
    func.locals
        .iter()
        .enumerate()
        .map(|(i, raw)| {
            let mut base: String = raw
                .chars()
                .map(|c| {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            if base.is_empty() || base.chars().next().unwrap().is_ascii_digit() {
                base = format!("l{i}");
            }
            let mut name = base.clone();
            let mut k = 1;
            while !seen.insert(name.clone()) {
                name = format!("{base}.{k}");
                k += 1;
            }
            name
        })
        .collect()
}

fn val(v: Value, module: &Module) -> String {
    match v {
        Value::Const(c) => format!("c{c}"),
        Value::Global(g) => format!("@{}", module.global(g).name),
        Value::Arg(a) => format!("arg{a}"),
        Value::Inst(i) => format!("%{}", i.index()),
    }
}

fn print_inst_kind(kind: &InstKind, m: &Module, locals: &[String]) -> String {
    match kind {
        InstKind::Load { addr } => format!("load {}", val(*addr, m)),
        InstKind::Store { addr, val: v } => {
            format!("store {}, {}", val(*addr, m), val(*v, m))
        }
        InstKind::AtomicRmw { op, addr, val: v } => {
            format!("rmw {} {}, {}", op.name(), val(*addr, m), val(*v, m))
        }
        InstKind::AtomicCas {
            addr,
            expected,
            new,
        } => format!(
            "cas {}, {}, {}",
            val(*addr, m),
            val(*expected, m),
            val(*new, m)
        ),
        InstKind::Fence { kind } => format!("fence {kind}"),
        InstKind::Alloc { words } => format!("alloc {}", val(*words, m)),
        InstKind::Bin { op, lhs, rhs } => {
            format!("{} {}, {}", op.name(), val(*lhs, m), val(*rhs, m))
        }
        InstKind::Cmp { op, lhs, rhs } => {
            format!("cmp {} {}, {}", op.name(), val(*lhs, m), val(*rhs, m))
        }
        InstKind::Select {
            cond,
            then_val,
            else_val,
        } => format!(
            "select {}, {}, {}",
            val(*cond, m),
            val(*then_val, m),
            val(*else_val, m)
        ),
        InstKind::Gep { base, index } => {
            format!("gep {}, {}", val(*base, m), val(*index, m))
        }
        InstKind::ReadLocal { local } => {
            format!("read_local {}", locals[local.index()])
        }
        InstKind::WriteLocal { local, val: v } => {
            format!("write_local {}, {}", locals[local.index()], val(*v, m))
        }
        InstKind::Call { callee, args } => {
            let args: Vec<String> = args.iter().map(|&a| val(a, m)).collect();
            format!("call {}({})", m.func(*callee).name, args.join(", "))
        }
        InstKind::CallIntrinsic { intr, args } => {
            let args: Vec<String> = args.iter().map(|&a| val(a, m)).collect();
            format!("intrinsic {}({})", intr.name(), args.join(", "))
        }
        InstKind::Br { target } => format!("br bb{}", target.index()),
        InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!(
            "condbr {}, bb{}, bb{}",
            val(*cond, m),
            then_bb.index(),
            else_bb.index()
        ),
        InstKind::Ret { val: Some(v) } => format!("ret {}", val(*v, m)),
        InstKind::Ret { val: None } => "ret".to_string(),
    }
}

impl std::fmt::Display for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&print_module(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};

    #[test]
    fn prints_mp_example() {
        let mut mb = ModuleBuilder::new("mp");
        let data = mb.global("data", 1);
        let flag = mb.global("flag", 1);
        let mut p = FunctionBuilder::new("producer", 0);
        p.store(data, 42i64);
        p.store(flag, 1i64);
        p.ret(None);
        mb.add_func(p.build());
        let mut c = FunctionBuilder::new("consumer", 0);
        c.spin_while_eq(flag, 0i64);
        let v = c.load(data);
        c.ret(Some(v));
        mb.add_func(c.build());
        let m = mb.finish();
        let text = print_module(&m);
        assert!(text.contains("module mp"));
        assert!(text.contains("global data 1"));
        assert!(text.contains("store @flag, c1"));
        assert!(text.contains("fn consumer"));
        assert!(text.contains("condbr"));
    }

    #[test]
    fn unique_names_dedupe() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.local("x");
        fb.local("x");
        fb.local("weird name!");
        fb.ret(None);
        let f = fb.build();
        let names = unique_local_names(&f);
        assert_eq!(names.len(), 3);
        assert_eq!(names[0], "x");
        assert_ne!(names[0], names[1]);
        assert!(names[2]
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '.'));
    }
}
