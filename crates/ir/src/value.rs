//! Operand values.

use crate::ids::{GlobalId, InstId};
use std::fmt;

/// An operand of an instruction.
///
/// Values are 64-bit words. Addresses are plain words too: the machine is
/// word-addressed, so `Gep` arithmetic is ordinary integer addition.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// An immediate constant.
    Const(i64),
    /// The base address of a global memory region.
    Global(GlobalId),
    /// The `n`-th argument of the enclosing function.
    Arg(u16),
    /// The result of an instruction in the enclosing function.
    Inst(InstId),
}

impl Value {
    /// Convenience constructor for constants.
    #[inline]
    pub fn c(v: i64) -> Self {
        Value::Const(v)
    }

    /// Returns the defining instruction, if this value is an instruction result.
    #[inline]
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(i) => Some(i),
            _ => None,
        }
    }

    /// Returns `true` if this value is a compile-time constant (immediate or
    /// global base address).
    #[inline]
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_) | Value::Global(_))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Const(v)
    }
}

impl From<InstId> for Value {
    fn from(i: InstId) -> Self {
        Value::Inst(i)
    }
}

impl From<GlobalId> for Value {
    fn from(g: GlobalId) -> Self {
        Value::Global(g)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(c) => write!(f, "c{c}"),
            Value::Global(g) => write!(f, "{g}"),
            Value::Arg(a) => write!(f, "arg{a}"),
            Value::Inst(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Value::c(-3).to_string(), "c-3");
        assert_eq!(Value::Arg(1).to_string(), "arg1");
        assert_eq!(Value::Inst(InstId::new(9)).to_string(), "%9");
        assert_eq!(Value::Global(GlobalId::new(2)).to_string(), "g2");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Const(5));
        assert_eq!(Value::from(InstId::new(1)).as_inst(), Some(InstId::new(1)));
        assert!(Value::Global(GlobalId::new(0)).is_const());
        assert!(!Value::Arg(0).is_const());
    }
}
