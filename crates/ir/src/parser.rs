//! Parser for the textual IR format emitted by [`crate::printer`].
//!
//! The format is line-oriented; `;` starts a comment. See the printer docs
//! for the grammar by example. Parsing is two-phase so that forward
//! references (mutually recursive calls, instruction results used across
//! blocks) resolve without declaration order constraints.

use crate::func::{Block, Function, Inst};
use crate::ids::{BlockId, FuncId, GlobalId, InstId, LocalId};
use crate::inst::{BinOp, CmpOp, FenceKind, InstKind, Intrinsic, RmwOp};
use crate::module::{GlobalDecl, Module};
use crate::util::FastMap;
use crate::value::Value;

/// A parse diagnostic with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        message: message.into(),
    })
}

/// Splits a line into tokens; `, ( ) =` are single-char tokens.
fn tokenize(line: &str) -> Vec<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for ch in line.chars() {
        match ch {
            ',' | '(' | ')' | '=' | '{' | '}' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks
}

struct FuncCtx<'a> {
    globals: &'a FastMap<String, GlobalId>,
    funcs: &'a FastMap<String, FuncId>,
    locals: FastMap<String, LocalId>,
    inst_labels: FastMap<String, InstId>,
}

impl FuncCtx<'_> {
    fn value(&self, tok: &str, line: usize) -> Result<Value, ParseError> {
        if let Some(rest) = tok.strip_prefix('c') {
            if let Ok(v) = rest.parse::<i64>() {
                return Ok(Value::Const(v));
            }
        }
        if let Some(name) = tok.strip_prefix('@') {
            return match self.globals.get(name) {
                Some(&g) => Ok(Value::Global(g)),
                None => err(line, format!("unknown global @{name}")),
            };
        }
        if let Some(rest) = tok.strip_prefix("arg") {
            if let Ok(a) = rest.parse::<u16>() {
                return Ok(Value::Arg(a));
            }
        }
        if let Some(label) = tok.strip_prefix('%') {
            return match self.inst_labels.get(label) {
                Some(&i) => Ok(Value::Inst(i)),
                None => err(line, format!("unknown value %{label}")),
            };
        }
        err(line, format!("cannot parse value `{tok}`"))
    }

    fn local(&self, tok: &str, line: usize) -> Result<LocalId, ParseError> {
        match self.locals.get(tok) {
            Some(&l) => Ok(l),
            None => err(line, format!("unknown local `{tok}`")),
        }
    }
}

fn parse_block_ref(tok: &str, line: usize) -> Result<BlockId, ParseError> {
    match tok.strip_prefix("bb").and_then(|r| r.parse::<usize>().ok()) {
        Some(i) => Ok(BlockId::new(i)),
        None => err(line, format!("expected block reference, got `{tok}`")),
    }
}

/// Parses operand lists of the shape `a, b, c` (given already-split tokens).
fn parse_args(toks: &[String], ctx: &FuncCtx, line: usize) -> Result<Vec<Value>, ParseError> {
    let mut args = Vec::new();
    let mut expect_value = true;
    for t in toks {
        if t == "," {
            if expect_value {
                return err(line, "misplaced comma");
            }
            expect_value = true;
        } else {
            if !expect_value {
                return err(line, format!("expected comma before `{t}`"));
            }
            args.push(ctx.value(t, line)?);
            expect_value = false;
        }
    }
    if expect_value && !args.is_empty() {
        return err(line, "trailing comma");
    }
    Ok(args)
}

/// Parses a full module from text.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let lines: Vec<(usize, String, String)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let (no_comment, comment) = match l.find(';') {
                Some(p) => (&l[..p], l[p + 1..].trim().to_string()),
                None => (l, String::new()),
            };
            (i + 1, no_comment.trim().to_string(), comment)
        })
        .collect();

    let mut module = Module::new("anonymous");
    let mut global_map: FastMap<String, GlobalId> = FastMap::default();
    let mut func_map: FastMap<String, FuncId> = FastMap::default();

    // ---- phase A: headers ----
    // Tracks whether we are inside a `fn ... { ... }` body: body lines
    // are phase B's job, but *top-level* lines must be one of the known
    // directives — free text is a parse error, not an empty module.
    let mut in_body = false;
    for (ln, line, _) in &lines {
        let toks = tokenize(line);
        if toks.is_empty() {
            continue;
        }
        match toks[0].as_str() {
            "}" if in_body => {
                in_body = false;
                continue;
            }
            _ if in_body => continue, // body lines handled in phase B
            _ => {}
        }
        match toks[0].as_str() {
            "module" => {
                if toks.len() != 2 {
                    return err(*ln, "expected `module <name>`");
                }
                module.name = toks[1].clone();
            }
            "global" => {
                if toks.len() < 3 {
                    return err(*ln, "expected `global <name> <words> [= inits]`");
                }
                let name = toks[1].clone();
                let words: u32 = match toks[2].parse() {
                    Ok(w) => w,
                    Err(_) => return err(*ln, "bad global size"),
                };
                let mut init = Vec::new();
                if toks.len() > 3 {
                    if toks[3] != "=" {
                        return err(*ln, "expected `=` before initializers");
                    }
                    for t in &toks[4..] {
                        match t.parse::<i64>() {
                            Ok(v) => init.push(v),
                            Err(_) => return err(*ln, format!("bad initializer `{t}`")),
                        }
                    }
                    if init.len() > words as usize {
                        return err(*ln, "more initializers than words");
                    }
                }
                if global_map.contains_key(&name) {
                    return err(*ln, format!("duplicate global {name}"));
                }
                let id = GlobalId::new(module.globals.len());
                global_map.insert(name.clone(), id);
                module.globals.push(GlobalDecl { name, words, init });
            }
            "fn" => {
                // `fn <name> params = <n> ...`
                if toks.len() < 5 || toks[2] != "params" || toks[3] != "=" {
                    return err(*ln, "expected `fn <name> params=<n> locals=(..) {`");
                }
                let name = toks[1].clone();
                let num_params: u16 = match toks[4].parse() {
                    Ok(p) => p,
                    Err(_) => return err(*ln, "bad params count"),
                };
                if func_map.contains_key(&name) {
                    return err(*ln, format!("duplicate function {name}"));
                }
                let id = FuncId::new(module.funcs.len());
                func_map.insert(name.clone(), id);
                let mut f = Function::new(name, num_params);
                f.blocks.clear(); // rebuilt in phase B
                module.funcs.push(f);
                in_body = true;
            }
            other => {
                return err(
                    *ln,
                    format!(
                        "unexpected top-level `{other}` (expected `module`, `global`, or `fn`)"
                    ),
                );
            }
        }
    }

    // ---- phase B: function bodies ----
    let mut i = 0;
    while i < lines.len() {
        let (ln, line, _) = &lines[i];
        let toks = tokenize(line);
        if toks.first().map(String::as_str) == Some("fn") {
            // Collect body lines until matching `}` at line start.
            let start = i;
            let mut end = None;
            for (j, (_, l, _)) in lines.iter().enumerate().skip(i + 1) {
                if l.trim() == "}" {
                    end = Some(j);
                    break;
                }
                if tokenize(l).first().map(String::as_str) == Some("fn") {
                    break;
                }
            }
            let end = match end {
                Some(e) => e,
                None => return err(*ln, "unterminated function body (missing `}`)"),
            };
            let fname = toks[1].clone();
            let fid = func_map[&fname];
            let func = parse_function_body(
                &lines[start..=end],
                &toks,
                *ln,
                &module,
                &global_map,
                &func_map,
            )?;
            module.funcs[fid.index()] = func;
            i = end + 1;
        } else {
            i += 1;
        }
    }

    Ok(module)
}

fn parse_function_body(
    lines: &[(usize, String, String)],
    header_toks: &[String],
    header_ln: usize,
    module: &Module,
    global_map: &FastMap<String, GlobalId>,
    func_map: &FastMap<String, FuncId>,
) -> Result<Function, ParseError> {
    let name = header_toks[1].clone();
    let num_params: u16 = header_toks[4].parse().unwrap();
    let mut func = Function::new(name, num_params);
    func.blocks.clear();

    // Header extras: locals=(..) and optional entry=bbK.
    let mut ctx = FuncCtx {
        globals: global_map,
        funcs: func_map,
        locals: FastMap::default(),
        inst_labels: FastMap::default(),
    };
    let mut t = 5;
    let mut entry: Option<BlockId> = None;
    while t < header_toks.len() {
        match header_toks[t].as_str() {
            "locals" => {
                if header_toks.get(t + 1).map(String::as_str) != Some("=")
                    || header_toks.get(t + 2).map(String::as_str) != Some("(")
                {
                    return err(header_ln, "expected `locals=(...)`");
                }
                t += 3;
                while t < header_toks.len() && header_toks[t] != ")" {
                    let lname = header_toks[t].clone();
                    let lid = LocalId::new(func.locals.len());
                    if ctx.locals.insert(lname.clone(), lid).is_some() {
                        return err(header_ln, format!("duplicate local {lname}"));
                    }
                    func.locals.push(lname);
                    t += 1;
                }
                t += 1; // skip `)`
            }
            "entry" => {
                if header_toks.get(t + 1).map(String::as_str) != Some("=") {
                    return err(header_ln, "expected `entry=bbK`");
                }
                entry = Some(parse_block_ref(&header_toks[t + 2], header_ln)?);
                t += 3;
            }
            "{" => t += 1,
            other => return err(header_ln, format!("unexpected token `{other}` in header")),
        }
    }

    // Pre-pass over body: assign InstIds in appearance order; bind labels;
    // discover blocks. The block table is dense (`0..=max_block`), so a
    // label index is bounded by the body line count — every block needs
    // its own label line — which keeps a mutated `bb999999999:` label
    // from allocating a billion empty blocks.
    let max_legal_block = lines.len() - 2;
    let check_block = |b: BlockId, tok: &str, ln: usize| -> Result<BlockId, ParseError> {
        if b.index() >= max_legal_block {
            return err(
                ln,
                format!(
                    "block label `{tok}` out of range (function body has {max_legal_block} lines)"
                ),
            );
        }
        Ok(b)
    };
    let mut max_block = 0usize;
    let mut saw_block = false;
    let mut next_inst = 0usize;
    for (ln, line, _) in &lines[1..lines.len() - 1] {
        let toks = tokenize(line);
        if toks.is_empty() {
            continue;
        }
        if toks[0].starts_with("bb") && toks.len() >= 2 && toks[1] == ":" {
            let b = check_block(parse_block_ref(&toks[0], *ln)?, &toks[0], *ln)?;
            max_block = max_block.max(b.index());
            saw_block = true;
            continue;
        }
        // also accept `bbN:` fused by tokenizer? ':' isn't split; handle suffix.
        if let Some(stripped) = toks[0].strip_suffix(':') {
            if stripped.starts_with("bb") {
                let b = check_block(parse_block_ref(stripped, *ln)?, stripped, *ln)?;
                max_block = max_block.max(b.index());
                saw_block = true;
                continue;
            }
        }
        if !saw_block {
            return err(*ln, "instruction before any block label");
        }
        let id = InstId::new(next_inst);
        next_inst += 1;
        if toks[0].starts_with('%') && toks.get(1).map(String::as_str) == Some("=") {
            let label = toks[0][1..].to_string();
            if ctx.inst_labels.insert(label.clone(), id).is_some() {
                return err(*ln, format!("duplicate result label %{label}"));
            }
        }
    }
    for bi in 0..=max_block {
        func.blocks.push(Block {
            name: String::new(),
            insts: Vec::new(),
        });
        let _ = bi;
    }
    if func.blocks.is_empty() {
        return err(header_ln, "function has no blocks");
    }
    func.entry = entry.unwrap_or(BlockId::new(0));

    // Main pass.
    let mut current: Option<BlockId> = None;
    let mut next_id = 0usize;
    for (ln, line, comment) in &lines[1..lines.len() - 1] {
        let toks = tokenize(line);
        if toks.is_empty() {
            continue;
        }
        let block_label =
            if toks[0].starts_with("bb") && toks.get(1).map(String::as_str) == Some(":") {
                Some(toks[0].clone())
            } else {
                toks[0]
                    .strip_suffix(':')
                    .filter(|s| s.starts_with("bb"))
                    .map(str::to_string)
            };
        if let Some(lbl) = block_label {
            let b = parse_block_ref(&lbl, *ln)?;
            // A trailing comment on the label line is the block's name.
            if !comment.is_empty() {
                func.blocks[b.index()].name = comment.clone();
            }
            current = Some(b);
            continue;
        }
        let cur = match current {
            Some(c) => c,
            None => return err(*ln, "instruction before any block label"),
        };
        // Strip `%label =` prefix.
        let (has_result, body) =
            if toks[0].starts_with('%') && toks.get(1).map(String::as_str) == Some("=") {
                (true, &toks[2..])
            } else {
                (false, &toks[..])
            };
        let kind = parse_inst(body, &ctx, module, *ln)?;
        if has_result && !kind.has_result() {
            return err(*ln, "instruction produces no result but one is bound");
        }
        let id = InstId::new(next_id);
        next_id += 1;
        func.insts.push(Inst { kind });
        func.blocks[cur.index()].insts.push(id);
    }

    Ok(func)
}

fn parse_inst(
    toks: &[String],
    ctx: &FuncCtx,
    module: &Module,
    ln: usize,
) -> Result<InstKind, ParseError> {
    if toks.is_empty() {
        return err(ln, "empty instruction");
    }
    let mn = toks[0].as_str();
    let rest = &toks[1..];
    let kind = match mn {
        "load" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 1 {
                return err(ln, "load takes 1 operand");
            }
            InstKind::Load { addr: a[0] }
        }
        "store" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 2 {
                return err(ln, "store takes 2 operands");
            }
            InstKind::Store {
                addr: a[0],
                val: a[1],
            }
        }
        "rmw" => {
            if rest.is_empty() {
                return err(ln, "rmw needs an operator");
            }
            let op = RmwOp::from_name(&rest[0]).ok_or(ParseError {
                line: ln,
                message: format!("bad rmw op `{}`", rest[0]),
            })?;
            let a = parse_args(&rest[1..], ctx, ln)?;
            if a.len() != 2 {
                return err(ln, "rmw takes 2 operands");
            }
            InstKind::AtomicRmw {
                op,
                addr: a[0],
                val: a[1],
            }
        }
        "cas" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 3 {
                return err(ln, "cas takes 3 operands");
            }
            InstKind::AtomicCas {
                addr: a[0],
                expected: a[1],
                new: a[2],
            }
        }
        "fence" => {
            let kind = match rest.first().map(String::as_str) {
                Some("full") => FenceKind::Full,
                Some("compiler") => FenceKind::Compiler,
                _ => return err(ln, "fence kind must be `full` or `compiler`"),
            };
            InstKind::Fence { kind }
        }
        "alloc" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 1 {
                return err(ln, "alloc takes 1 operand");
            }
            InstKind::Alloc { words: a[0] }
        }
        "cmp" => {
            if rest.is_empty() {
                return err(ln, "cmp needs an operator");
            }
            let op = CmpOp::from_name(&rest[0]).ok_or(ParseError {
                line: ln,
                message: format!("bad cmp op `{}`", rest[0]),
            })?;
            let a = parse_args(&rest[1..], ctx, ln)?;
            if a.len() != 2 {
                return err(ln, "cmp takes 2 operands");
            }
            InstKind::Cmp {
                op,
                lhs: a[0],
                rhs: a[1],
            }
        }
        "select" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 3 {
                return err(ln, "select takes 3 operands");
            }
            InstKind::Select {
                cond: a[0],
                then_val: a[1],
                else_val: a[2],
            }
        }
        "gep" => {
            let a = parse_args(rest, ctx, ln)?;
            if a.len() != 2 {
                return err(ln, "gep takes 2 operands");
            }
            InstKind::Gep {
                base: a[0],
                index: a[1],
            }
        }
        "read_local" => {
            if rest.len() != 1 {
                return err(ln, "read_local takes 1 local name");
            }
            InstKind::ReadLocal {
                local: ctx.local(&rest[0], ln)?,
            }
        }
        "write_local" => {
            if rest.len() < 3 || rest[1] != "," {
                return err(ln, "expected `write_local <local>, <value>`");
            }
            let local = ctx.local(&rest[0], ln)?;
            let a = parse_args(&rest[2..], ctx, ln)?;
            if a.len() != 1 {
                return err(ln, "write_local takes 1 value");
            }
            InstKind::WriteLocal { local, val: a[0] }
        }
        "call" | "intrinsic" => {
            if rest.len() < 3 || rest[1] != "(" || rest.last().map(String::as_str) != Some(")") {
                return err(ln, format!("expected `{mn} <name>(args)`"));
            }
            let callee_name = &rest[0];
            let args = parse_args(&rest[2..rest.len() - 1], ctx, ln)?;
            if mn == "call" {
                match ctx.funcs.get(callee_name.as_str()) {
                    Some(&f) => InstKind::Call { callee: f, args },
                    None => return err(ln, format!("unknown function `{callee_name}`")),
                }
            } else {
                match Intrinsic::from_name(callee_name) {
                    Some(intr) => InstKind::CallIntrinsic { intr, args },
                    None => return err(ln, format!("unknown intrinsic `{callee_name}`")),
                }
            }
        }
        "br" => {
            if rest.len() != 1 {
                return err(ln, "br takes 1 block");
            }
            InstKind::Br {
                target: parse_block_ref(&rest[0], ln)?,
            }
        }
        "condbr" => {
            if rest.len() != 5 || rest[1] != "," || rest[3] != "," {
                return err(ln, "expected `condbr <val>, bbN, bbM`");
            }
            InstKind::CondBr {
                cond: ctx.value(&rest[0], ln)?,
                then_bb: parse_block_ref(&rest[2], ln)?,
                else_bb: parse_block_ref(&rest[4], ln)?,
            }
        }
        "ret" => {
            if rest.is_empty() {
                InstKind::Ret { val: None }
            } else if rest.len() == 1 {
                InstKind::Ret {
                    val: Some(ctx.value(&rest[0], ln)?),
                }
            } else {
                return err(ln, "ret takes at most 1 operand");
            }
        }
        other => {
            // binary ops come last: `add a, b` etc.
            match BinOp::from_name(other) {
                Some(op) => {
                    let a = parse_args(rest, ctx, ln)?;
                    if a.len() != 2 {
                        return err(ln, format!("{other} takes 2 operands"));
                    }
                    InstKind::Bin {
                        op,
                        lhs: a[0],
                        rhs: a[1],
                    }
                }
                None => return err(ln, format!("unknown instruction `{other}`")),
            }
        }
    };
    let _ = module;
    Ok(kind)
}

/// Parses many module texts as independent pool units (`parse_module`
/// is pure, so parsing is embarrassingly parallel). Results are keyed
/// by input index: sequential and pooled runs return identical vectors,
/// including *which* texts failed. With `parallel: false` this is a
/// plain serial map.
///
/// This is the streamed-ingestion building block: the fleet's windowed
/// scheduler feeds texts here (or as individual ingest units) so parse
/// time overlaps analysis of already-admitted modules instead of being
/// serial prologue.
pub fn parse_modules<S: AsRef<str> + Sync>(
    texts: &[S],
    parallel: bool,
) -> Vec<Result<Module, ParseError>> {
    crate::pool::ThreadPool::global()
        .map_indexed(texts.len(), parallel, |i| parse_module(texts[i].as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{FunctionBuilder, ModuleBuilder};
    use crate::printer::print_module;
    use crate::verify::verify_module;

    #[test]
    fn parse_modules_matches_serial_and_keeps_failures_in_place() {
        let texts: Vec<String> = (0..9)
            .map(|i| {
                if i % 3 == 2 {
                    format!("module bad{i}\nthis is not ir\n")
                } else {
                    format!("module m{i}\nglobal g 1\nfn f params=0 locals=() {{\nbb0:\n  store @g, c{i}\n  ret\n}}\n")
                }
            })
            .collect();
        let serial = parse_modules(&texts, false);
        let pooled = parse_modules(&texts, true);
        assert_eq!(serial.len(), 9);
        for (i, (s, p)) in serial.iter().zip(&pooled).enumerate() {
            match (s, p) {
                (Ok(a), Ok(b)) => {
                    assert!(i % 3 != 2, "slot {i} should not fail");
                    assert_eq!(print_module(a), print_module(b));
                }
                (Err(a), Err(b)) => {
                    assert_eq!(i % 3, 2, "slot {i} should parse");
                    assert_eq!(a, b);
                }
                _ => panic!("serial/pooled disagree at slot {i}"),
            }
        }
    }

    const MP: &str = r#"
module mp
global data 1
global flag 1

fn producer params=0 locals=() {
bb0:
  store @data, c42
  store @flag, c1
  ret
}

fn consumer params=0 locals=() {
bb0:
  br bb1
bb1:
  %v = load @flag
  %c = cmp eq %v, c0
  condbr %c, bb1, bb2
bb2:
  %d = load @data
  ret %d
}
"#;

    #[test]
    fn parses_mp() {
        let m = parse_module(MP).expect("parses");
        assert_eq!(m.name, "mp");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.funcs.len(), 2);
        assert!(verify_module(&m).is_empty(), "parsed module verifies");
        let consumer = m.func(m.func_by_name("consumer").unwrap());
        assert_eq!(consumer.num_blocks(), 3);
    }

    #[test]
    fn roundtrip_print_parse_print() {
        let mut mb = ModuleBuilder::new("rt");
        let g = mb.global_init("arr", 4, vec![1, 2, 3, 4]);
        let lock = mb.global("lock", 1);
        let mut fb = FunctionBuilder::new("worker", 1);
        let l = fb.local("acc");
        fb.write_local(l, 0i64);
        fb.lock_acquire(lock);
        fb.for_loop(0i64, 4i64, |b, i| {
            let p = b.gep(g, i);
            let v = b.load(p);
            let acc = b.read_local(l);
            let s = b.add(acc, v);
            b.write_local(l, s);
        });
        fb.lock_release(lock);
        let r = fb.read_local(l);
        fb.ret(Some(r));
        mb.add_func(fb.build());
        let m = mb.finish();

        let printed = print_module(&m);
        let reparsed = parse_module(&printed).expect("reparse");
        assert!(verify_module(&reparsed).is_empty());
        let printed2 = print_module(&reparsed);
        assert_eq!(printed, printed2, "print-parse-print is a fixpoint");
    }

    #[test]
    fn error_on_unknown_value() {
        let bad = "module m\nfn f params=0 locals=() {\nbb0:\n  ret %nope\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("unknown value"));
        assert_eq!(e.line, 4);
    }

    #[test]
    fn error_on_unknown_instruction() {
        let bad = "module m\nfn f params=0 locals=() {\nbb0:\n  frobnicate c1\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("unknown instruction"));
    }

    #[test]
    fn error_on_duplicate_global() {
        let bad = "module m\nglobal x 1\nglobal x 2\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("duplicate global"));
    }

    #[test]
    fn parses_intrinsics_and_calls() {
        let src = r#"
module m
global lock 1
fn helper params=1 locals=() {
bb0:
  ret arg0
}
fn main params=0 locals=() {
bb0:
  intrinsic lock_acquire(@lock)
  %t = intrinsic thread_id()
  %r = call helper(%t)
  intrinsic lock_release(@lock)
  ret %r
}
"#;
        let m = parse_module(src).expect("parses");
        assert!(verify_module(&m).is_empty());
        let main = m.func(m.func_by_name("main").unwrap());
        assert_eq!(main.num_insts(), 5);
    }

    #[test]
    fn error_on_top_level_junk() {
        let e = parse_module("this is not IR\n").unwrap_err();
        assert!(e.message.contains("unexpected top-level"), "{e}");
        assert_eq!(e.line, 1);
        // Stray instruction after a closed body is junk, not silently dropped.
        let bad = "module m\nfn f params=0 locals=() {\nbb0:\n  ret\n}\n  ret\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 6);
    }

    #[test]
    fn error_on_out_of_range_block_label() {
        // A mutated label with a huge index must be a diagnostic, not a
        // billion-entry block table.
        let bad = "module m\nfn f params=0 locals=() {\nbb999999999:\n  ret\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        assert_eq!(e.line, 3);
        // Dense labels up to the body size still parse.
        let ok = "module m\nfn f params=0 locals=() {\nbb0:\n  br bb1\nbb1:\n  ret\n}\n";
        assert!(parse_module(ok).is_ok());
    }

    #[test]
    fn global_inits_parse() {
        let m = parse_module("module m\nglobal g 4 = 9 8 7\n").unwrap();
        assert_eq!(m.globals[0].init, vec![9, 8, 7]);
        assert_eq!(m.globals[0].words, 4);
    }
}
