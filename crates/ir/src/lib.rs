//! # fence-ir
//!
//! An *infinite-register load-store intermediate representation* — the
//! compiler substrate on which the whole fence-placement pipeline operates.
//!
//! The paper (McPherson et al., PPoPP'15) implements its analyses inside
//! LLVM; all of its algorithms are stated over "infinite register load-store
//! intermediate representations". This crate provides exactly that
//! abstraction, built from scratch:
//!
//! * **Values** are immutable results of instructions, constants, global
//!   addresses, or function arguments ([`Value`]).
//! * **Locals** are function-scoped mutable registers (`read_local` /
//!   `write_local`), giving the "infinite register file" without requiring
//!   SSA phis. They are *not* memory: only [`InstKind::Load`]-family
//!   instructions touch shared memory.
//! * **Memory** is a flat word-addressed space of 64-bit cells. Globals are
//!   named module-level regions; `alloc` carves fresh cells from a shared
//!   heap. Address arithmetic uses [`InstKind::Gep`] (base + index), the
//!   analogue of LLVM's `getelementptr`.
//! * **Control flow** is basic blocks terminated by `br`/`condbr`/`ret`.
//!
//! Sub-modules:
//!
//! * [`builder`] — ergonomic construction of modules and functions,
//! * [`mod@cfg`] — successor/predecessor maps, reverse postorder, reachability,
//! * [`verify`] — structural well-formedness checking,
//! * [`printer`] / [`parser`] — a stable textual format, round-trippable,
//! * [`pool`] — a persistent std-only thread pool shared by the analysis
//!   and placement layers for per-function parallel stages,
//! * [`util`] — bitsets and fast hash containers shared by the other crates.

pub mod builder;
pub mod cfg;
pub mod func;
pub mod ids;
pub mod inst;
pub mod module;
pub mod parser;
pub mod pool;
pub mod printer;
pub mod util;
pub mod value;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cfg::{Cfg, FuncSubstrate, Reachability, RowInterner};
pub use func::{Block, Function, Inst};
pub use ids::{BlockId, FuncId, GlobalId, InstId, LocalId};
pub use inst::{BinOp, CmpOp, FenceKind, InstKind, Intrinsic, RmwOp};
pub use module::{GlobalDecl, Module};
pub use value::Value;
pub use verify::{verify_function, verify_module, verify_module_checked, VerifyError};
