//! Small performance-oriented containers shared across the workspace:
//! a dense [`BitSet`] and FxHash-style fast hash maps/sets.
//!
//! The default SipHash hasher is a poor fit for the hot integer-keyed maps
//! used throughout the analyses (see the Rust Performance Book, "Hashing"),
//! so we provide a tiny multiply-xor hasher equivalent in spirit to
//! rustc's `FxHasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher: very fast for small integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// A fixed-capacity dense bitset over `usize` indices.
///
/// Used for reachability matrices, escape sets and worklist "seen" sets
/// where the universe is a dense id space. Hashable (words + universe),
/// so identical sets can be interned and shared (see
/// [`crate::cfg::RowInterner`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of elements in the universe (not the cardinality).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `idx`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit {idx} out of universe {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        let old = self.words[w];
        self.words[w] = old | (1 << b);
        old & (1 << b) == 0
    }

    /// Removes `idx`; returns `true` if it was present.
    ///
    /// Like [`BitSet::contains`] (and unlike the old direct indexing, which
    /// panicked), an out-of-universe index is a debug assertion but a safe
    /// no-op returning `false` in release builds.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit {idx} out of universe {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        match self.words.get_mut(w) {
            Some(word) => {
                let old = *word;
                *word = old & !(1 << b);
                old & (1 << b) != 0
            }
            None => false,
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Unions `other` into `self` and records the bits that were actually
    /// new into `delta` (word-level). Returns `true` if `self` changed.
    ///
    /// This is the primitive behind sparse worklist propagation: a solver
    /// keeps one `delta` accumulator per node and only ever re-propagates
    /// the genuinely new bits.
    pub fn union_with_into(&mut self, other: &BitSet, delta: &mut BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        debug_assert_eq!(self.len, delta.len);
        let mut changed = false;
        for ((a, b), d) in self
            .words
            .iter_mut()
            .zip(&other.words)
            .zip(&mut delta.words)
        {
            let new = b & !*a;
            if new != 0 {
                *a |= new;
                *d |= new;
                changed = true;
            }
        }
        changed
    }

    /// Returns `true` if the sets share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Iterates the elements of `self ∩ other` in ascending order without
    /// materializing the intersection (word-level AND, then bit-walk).
    ///
    /// This is the primitive behind the alias oracle's inverted writer
    /// index: a read's location set is intersected against the set of
    /// locations that actually have writers, so empty buckets are skipped
    /// a word at a time.
    pub fn iter_intersection<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (&a, &b))| {
                let mut bits = a & b;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Iterates the elements of `(self \ minus) ∩ mask` in ascending
    /// order (word-level `a & !b & c`, then bit-walk).
    ///
    /// This is the primitive behind the per-SCC aggregate recurrence in
    /// ordering generation: each SCC's reachability row is a superset of
    /// its base successor's row, so the aggregate difference is summed
    /// over this (typically tiny) set difference instead of re-walking
    /// the whole row.
    pub fn iter_difference_intersection<'a>(
        &'a self,
        minus: &'a BitSet,
        mask: &'a BitSet,
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.len, minus.len);
        debug_assert_eq!(self.len, mask.len);
        self.words
            .iter()
            .zip(&minus.words)
            .zip(&mask.words)
            .enumerate()
            .flat_map(|(wi, ((&a, &b), &c))| {
                let mut bits = a & !b & c;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let bit = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        Some(wi * 64 + bit)
                    }
                })
            })
    }

    /// Number of elements in `self \ other` (word-level popcount; no
    /// iteration, no allocation).
    pub fn difference_count(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.len, other.len);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The smallest set index `>= from`, or `None` (word-level scan; the
    /// primitive behind borrowed-set iterators).
    pub fn next_set_bit(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let (mut w, b) = (from / 64, from % 64);
        let mut word = self.words[w] & (!0u64 << b);
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterates over set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Clears all bits, keeping the universe size.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// The backing words, little-endian within each `u64`. Exposed so
    /// solvers can keep *flat* per-node delta storage (one `Vec<u64>` for
    /// thousands of rows) and still union against `BitSet`s word-wise.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Unions a raw word row (same universe, see [`BitSet::words`]) into
    /// `self`, recording the genuinely new bits into the raw `delta` row.
    /// Returns `true` if `self` changed.
    pub fn union_words(&mut self, src: &[u64], delta: &mut [u64]) -> bool {
        debug_assert_eq!(self.words.len(), src.len());
        debug_assert_eq!(self.words.len(), delta.len());
        let mut changed = false;
        for ((a, b), d) in self.words.iter_mut().zip(src).zip(delta) {
            let new = b & !*a;
            if new != 0 {
                *a |= new;
                *d |= new;
                changed = true;
            }
        }
        changed
    }
}

/// Iterates the set indices of a raw word row in ascending order (the
/// flat-storage sibling of [`BitSet::iter`]).
pub fn iter_words(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut bits = w;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn bitset_iter_sorted() {
        let mut s = BitSet::new(200);
        for &i in &[5usize, 63, 64, 65, 190] {
            s.insert(i);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn bitset_union_and_intersect() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        assert!(!a.intersects(&b));
        assert!(a.union_with(&b));
        assert!(a.contains(70));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.intersects(&b));
    }

    #[test]
    fn bitset_remove_and_clear() {
        let mut s = BitSet::new(10);
        s.insert(4);
        assert!(s.remove(4));
        assert!(!s.remove(4));
        s.insert(9);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 10);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of universe")]
    fn remove_out_of_universe_asserts_in_debug() {
        let mut s = BitSet::new(10);
        s.remove(10);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn remove_out_of_universe_is_safe_in_release() {
        // Harmonized with `contains`: no panic, nothing to remove.
        let mut s = BitSet::new(10);
        assert!(!s.remove(10));
        assert!(!s.remove(1_000_000));
    }

    #[test]
    fn remove_and_contains_agree_on_word_slack() {
        // Universe 10 occupies one 64-bit word; indices 10..64 are slack.
        // `contains` reports false there and `remove` must behave the same
        // way (modulo the debug assertion), never panic.
        let mut s = BitSet::new(70);
        s.insert(69);
        assert!(!s.contains(68));
        assert!(!s.remove(68));
        assert!(s.remove(69));
        assert!(!s.contains(69));
    }

    #[test]
    fn union_with_into_records_only_new_bits() {
        let mut a = BitSet::new(130);
        a.insert(5);
        a.insert(64);
        let mut b = BitSet::new(130);
        b.insert(64); // already present — must not land in delta
        b.insert(65);
        b.insert(129);
        let mut delta = BitSet::new(130);
        assert!(a.union_with_into(&b, &mut delta));
        assert_eq!(delta.iter().collect::<Vec<_>>(), vec![65, 129]);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![5, 64, 65, 129]);
        let mut delta2 = BitSet::new(130);
        assert!(
            !a.union_with_into(&b, &mut delta2),
            "second union is a no-op"
        );
        assert!(delta2.is_empty());
    }

    #[test]
    fn next_set_bit_scans_words() {
        let mut s = BitSet::new(300);
        for i in [0usize, 63, 64, 200] {
            s.insert(i);
        }
        assert_eq!(s.next_set_bit(0), Some(0));
        assert_eq!(s.next_set_bit(1), Some(63));
        assert_eq!(s.next_set_bit(64), Some(64));
        assert_eq!(s.next_set_bit(65), Some(200));
        assert_eq!(s.next_set_bit(201), None);
        assert_eq!(s.next_set_bit(1000), None);
    }

    #[test]
    fn iter_intersection_matches_filtered_iter() {
        let mut a = BitSet::new(300);
        let mut b = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 65, 128, 299] {
            a.insert(i);
        }
        for i in [5usize, 64, 66, 128, 299] {
            b.insert(i);
        }
        let got: Vec<_> = a.iter_intersection(&b).collect();
        let want: Vec<_> = a.iter().filter(|&i| b.contains(i)).collect();
        assert_eq!(got, want);
        assert_eq!(got, vec![5, 64, 128, 299]);
        let empty = BitSet::new(300);
        assert_eq!(a.iter_intersection(&empty).count(), 0);
    }

    #[test]
    fn iter_difference_intersection_matches_filtered_iter() {
        let mut a = BitSet::new(300);
        let mut minus = BitSet::new(300);
        let mut mask = BitSet::new(300);
        for i in [0usize, 5, 63, 64, 65, 128, 200, 299] {
            a.insert(i);
        }
        for i in [5usize, 64, 128] {
            minus.insert(i);
        }
        for i in [0usize, 63, 65, 128, 200, 250] {
            mask.insert(i);
        }
        let got: Vec<_> = a.iter_difference_intersection(&minus, &mask).collect();
        let want: Vec<_> = a
            .iter()
            .filter(|&i| !minus.contains(i) && mask.contains(i))
            .collect();
        assert_eq!(got, want);
        assert_eq!(got, vec![0, 63, 65, 200]);
        // Subtracting self against a full mask yields nothing.
        let full = {
            let mut f = BitSet::new(300);
            for i in 0..300 {
                f.insert(i);
            }
            f
        };
        assert_eq!(a.iter_difference_intersection(&a, &full).count(), 0);
    }

    #[test]
    fn difference_count_is_set_minus() {
        let mut a = BitSet::new(130);
        let mut b = BitSet::new(130);
        for i in [1usize, 64, 65, 129] {
            a.insert(i);
        }
        b.insert(64);
        b.insert(2);
        assert_eq!(a.difference_count(&b), 3);
        assert_eq!(b.difference_count(&a), 1);
        assert_eq!(a.difference_count(&a), 0);
    }

    #[test]
    fn fast_map_smoke() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&999), Some(&1998));
        let mut s: FastSet<(u32, u32)> = FastSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
    }
}
