//! Small performance-oriented containers shared across the workspace:
//! a dense [`BitSet`] and FxHash-style fast hash maps/sets.
//!
//! The default SipHash hasher is a poor fit for the hot integer-keyed maps
//! used throughout the analyses (see the Rust Performance Book, "Hashing"),
//! so we provide a tiny multiply-xor hasher equivalent in spirit to
//! rustc's `FxHasher`.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher: very fast for small integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

/// A fixed-capacity dense bitset over `usize` indices.
///
/// Used for reachability matrices, escape sets and worklist "seen" sets
/// where the universe is a dense id space.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// Creates an empty set over a universe of `len` elements.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of elements in the universe (not the cardinality).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Inserts `idx`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        debug_assert!(idx < self.len, "bit {idx} out of universe {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        let old = self.words[w];
        self.words[w] = old | (1 << b);
        old & (1 << b) == 0
    }

    /// Removes `idx`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        let old = self.words[w];
        self.words[w] = old & !(1 << b);
        old & (1 << b) != 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        let (w, b) = (idx / 64, idx % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Unions `other` into `self`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | *b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Returns `true` if the sets share any element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Clears all bits, keeping the universe size.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn bitset_iter_sorted() {
        let mut s = BitSet::new(200);
        for &i in &[5usize, 63, 64, 65, 190] {
            s.insert(i);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![5, 63, 64, 65, 190]);
    }

    #[test]
    fn bitset_union_and_intersect() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(3);
        b.insert(70);
        assert!(!a.intersects(&b));
        assert!(a.union_with(&b));
        assert!(a.contains(70));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.intersects(&b));
    }

    #[test]
    fn bitset_remove_and_clear() {
        let mut s = BitSet::new(10);
        s.insert(4);
        assert!(s.remove(4));
        assert!(!s.remove(4));
        s.insert(9);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.universe(), 10);
    }

    #[test]
    fn fast_map_smoke() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&999), Some(&1998));
        let mut s: FastSet<(u32, u32)> = FastSet::default();
        s.insert((1, 2));
        assert!(s.contains(&(1, 2)));
    }
}
