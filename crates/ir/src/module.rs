//! Modules: the translation unit the pipeline operates on.

use crate::func::Function;
use crate::ids::{FuncId, GlobalId};

/// A named global memory region.
#[derive(Clone, Debug)]
pub struct GlobalDecl {
    /// Unique name within the module.
    pub name: String,
    /// Size in 64-bit words.
    pub words: u32,
    /// Initial contents (zero-extended to `words`).
    pub init: Vec<i64>,
}

/// A module: globals plus functions. The unit of analysis and simulation.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name (informational).
    pub name: String,
    /// Global regions, indexed by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Functions, indexed by [`FuncId`].
    pub funcs: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            globals: Vec::new(),
            funcs: Vec::new(),
        }
    }

    /// Immutable access to a function.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Immutable access to a global declaration.
    #[inline]
    pub fn global(&self, id: GlobalId) -> &GlobalDecl {
        &self.globals[id.index()]
    }

    /// Iterates `(FuncId, &Function)`.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Iterates `(GlobalId, &GlobalDecl)`.
    pub fn iter_globals(&self) -> impl Iterator<Item = (GlobalId, &GlobalDecl)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId::new(i), g))
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::new)
    }

    /// Total static instruction count across all functions.
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {

    use crate::builder::ModuleBuilder;

    #[test]
    fn lookups() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.global("flag", 1);
        let f = mb.declare_func("main", 0);
        let m = {
            let mut fb = crate::builder::FunctionBuilder::new("main", 0);
            fb.ret(None);
            mb.define_func(f, fb.build());
            mb.finish()
        };
        assert_eq!(m.global_by_name("flag"), Some(g));
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.func_by_name("nope"), None);
        assert_eq!(m.total_insts(), 1);
    }
}
