//! Control-flow-graph utilities: successors/predecessors, reverse
//! postorder, reachability (the "lookup table" the paper's ordering
//! generation queries), and dominators (used by the verifier).
//!
//! [`Reachability`] is built by Tarjan SCC condensation plus one
//! reverse-topological word-level union sweep — `O(B + E + S·B/64)` and
//! one shared row per SCC — replacing the seed's per-block DFS
//! (`O(B·E)` time, one row per block). `in_cycle` is read straight off
//! the condensation.
//!
//! ## Shared substrate
//!
//! Building a [`Cfg`] and its [`Reachability`] is pure per-function work
//! that several downstream stages consume (ordering generation, fence
//! minimization, reports). [`FuncSubstrate`] bundles the two so callers
//! build them **exactly once per function** and thread borrowed
//! references everywhere else; the thread-local [`cfg_builds`] /
//! [`reachability_builds`] counters let tests pin that no stage rebuilds
//! them behind the cache's back.
//!
//! ## Row interning
//!
//! Reachability rows are stored behind `Arc`s: within one function every
//! block of an SCC already shares a single row, and a [`RowInterner`]
//! extends that sharing *across* functions and modules — a fleet run over
//! a corpus with repeated kernels hands every substrate build the same
//! interner, so structurally identical rows (same universe, same bits —
//! ubiquitous across straight-line functions and stamped-out corpus
//! kernels) are stored once process-wide instead of once per function.
//! The SCC-sum walks of ordering generation then traverse one shared
//! allocation instead of per-function clones.

use crate::func::Function;
use crate::ids::BlockId;
use crate::util::{BitSet, FastSet};
use std::sync::{Arc, Mutex};

thread_local! {
    static CFG_BUILDS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
    static REACH_BUILDS: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Number of [`Cfg::new`] constructions executed **on this thread** —
/// the observable that lets tests assert the pipeline builds each
/// function's CFG exactly once per batch.
pub fn cfg_builds() -> usize {
    CFG_BUILDS.with(|c| c.get())
}

/// Number of [`Reachability::new`] constructions executed **on this
/// thread** (see [`cfg_builds`]).
pub fn reachability_builds() -> usize {
    REACH_BUILDS.with(|c| c.get())
}

/// A thread-safe deduplicating store for reachability rows.
///
/// [`Reachability::new_interned`] hands every finished row to the
/// interner; structurally identical rows (same universe, same bits) come
/// back as clones of one shared `Arc<BitSet>`, so a batch over many
/// structurally similar functions — repeated corpus kernels, stamped-out
/// synthetic workers — stores each distinct row exactly once. The hit
/// counter records how many row lookups were served from the store
/// rather than allocated fresh.
///
/// ```
/// use fence_ir::builder::FunctionBuilder;
/// use fence_ir::cfg::{FuncSubstrate, RowInterner};
///
/// let interner = RowInterner::new();
/// let funcs: Vec<_> = (0..3)
///     .map(|i| {
///         let mut fb = FunctionBuilder::new(format!("f{i}"), 0);
///         fb.ret(None);
///         fb.build()
///     })
///     .collect();
/// let subs: Vec<FuncSubstrate> = funcs
///     .iter()
///     .map(|f| FuncSubstrate::new_interned(f, &interner))
///     .collect();
/// // Three structurally identical functions share one stored row.
/// assert_eq!(interner.unique_rows(), 1);
/// assert_eq!(interner.hits(), 2);
/// assert!(std::ptr::eq(
///     subs[0].reach.row(funcs[0].entry),
///     subs[2].reach.row(funcs[2].entry),
/// ));
/// ```
#[derive(Default)]
pub struct RowInterner {
    inner: Mutex<InternerInner>,
}

#[derive(Default)]
struct InternerInner {
    rows: FastSet<Arc<BitSet>>,
    hits: usize,
}

impl RowInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared `Arc` for `row`, storing it on first sight.
    pub fn intern(&self, row: BitSet) -> Arc<BitSet> {
        let mut g = self.inner.lock().unwrap();
        if let Some(existing) = g.rows.get(&row).map(Arc::clone) {
            g.hits += 1;
            return existing;
        }
        let arc = Arc::new(row);
        g.rows.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct rows stored.
    pub fn unique_rows(&self) -> usize {
        self.inner.lock().unwrap().rows.len()
    }

    /// Number of `intern` calls answered by an already-stored row.
    pub fn hits(&self) -> usize {
        self.inner.lock().unwrap().hits
    }

    /// Total `u64` words retained across all distinct rows — the storage
    /// actually paid, for memory accounting in fleet roll-ups.
    pub fn retained_words(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .rows
            .iter()
            .map(|r| r.words().len())
            .sum()
    }
}

/// Successor / predecessor maps of a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// `succs[b]` = successor blocks of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = predecessor blocks of `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// The function's entry block.
    pub entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `func` from its block terminators.
    pub fn new(func: &Function) -> Self {
        CFG_BUILDS.with(|c| c.set(c.get() + 1));
        let n = func.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            if let Some(&term) = block.insts.last() {
                for s in func.inst(term).kind.successors() {
                    succs[bid.index()].push(s);
                    preds[s.index()].push(bid);
                }
            }
        }
        Cfg {
            succs,
            preds,
            entry: func.entry,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Reverse postorder starting from the entry block. Unreachable blocks
    /// are appended at the end (in id order) so every block appears exactly
    /// once.
    pub fn rpo(&self) -> Vec<BlockId> {
        let n = self.num_blocks();
        let mut visited = BitSet::new(n);
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        visited.insert(self.entry.index());
        stack.push((self.entry, 0));
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs[b.index()].len() {
                let s = self.succs[b.index()][*i];
                *i += 1;
                if visited.insert(s.index()) {
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for b in 0..n {
            if !visited.contains(b) {
                post.push(BlockId::new(b));
            }
        }
        post
    }
}

/// Transitive reachability over the CFG: `reaches(a, b)` means there is a
/// path of **one or more** edges from `a` to `b`. In particular
/// `reaches(b, b)` holds iff `b` lies on a cycle.
///
/// This is the lookup table that ordering generation consults (paper §4.3:
/// "Whether there exists a path between basic blocks is determined prior to
/// this process with an examination of the CFG, to create a lookup table of
/// reachability").
///
/// Construction runs iterative Tarjan SCC condensation followed by a
/// single reverse-topological sweep that unions successor rows word-wise:
/// `O(B + E + S·B/64)` for `S` SCCs instead of the old per-block DFS's
/// `O(B·E)`. All blocks of one SCC share a single row (they reach exactly
/// the same set), and `in_cycle` falls out of the condensation for free —
/// a block is on a cycle iff its SCC has more than one member or a self
/// edge.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// SCC id of each block; ids are assigned in Tarjan completion order,
    /// which is reverse-topological over the condensation.
    scc: Vec<u32>,
    /// One reachable-block row per SCC, shared by all its members — and,
    /// when built through a [`RowInterner`], shared with every other
    /// function whose SCC reaches an identical block set.
    rows: Vec<Arc<BitSet>>,
    /// Per SCC: more than one member, or a self edge.
    cyclic: Vec<bool>,
    /// Per SCC: a successor SCC in the condensation whose row is a
    /// subset of this SCC's row (`u32::MAX` for sinks). Chosen as the
    /// largest-row successor, so `rows[s] \ rows[base[s]]` is typically a
    /// handful of blocks — the invariant per-SCC aggregate recurrences
    /// build on (see [`Reachability::scc_base`]).
    base: Vec<u32>,
}

impl Reachability {
    /// Computes all-pairs reachability via SCC condensation.
    pub fn new(cfg: &Cfg) -> Self {
        Self::build(cfg, None)
    }

    /// Like [`Reachability::new`], but hands every finished row to
    /// `interner` so identical rows across functions share one
    /// allocation. Queries are unaffected; only storage is deduplicated.
    pub fn new_interned(cfg: &Cfg, interner: &RowInterner) -> Self {
        Self::build(cfg, Some(interner))
    }

    fn build(cfg: &Cfg, interner: Option<&RowInterner>) -> Self {
        REACH_BUILDS.with(|c| c.set(c.get() + 1));
        let n = cfg.num_blocks();
        let scc = tarjan_sccs(cfg);
        let num_sccs = scc.iter().map(|&s| s + 1).max().unwrap_or(0) as usize;

        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_sccs];
        for b in 0..n {
            members[scc[b] as usize].push(b as u32);
        }
        let mut cyclic = vec![false; num_sccs];
        for (s, ms) in members.iter().enumerate() {
            cyclic[s] = ms.len() > 1
                || ms.iter().any(|&b| {
                    cfg.succs[b as usize]
                        .iter()
                        .any(|t| t.index() == b as usize)
                });
        }

        // Reverse-topological sweep: SCC ids increase from sinks to
        // sources, so every cross-SCC successor row is already final.
        // `merged` is a generation stamp deduplicating successor SCCs, so
        // each distinct successor row is unioned once per source SCC (not
        // once per edge).
        let mut rows: Vec<Arc<BitSet>> = Vec::with_capacity(num_sccs);
        let mut merged = vec![u32::MAX; num_sccs];
        let mut base = vec![u32::MAX; num_sccs];
        // Row popcounts, memoized lazily: only rows actually *compared*
        // (successors of SCCs with several distinct successors) pay the
        // count sweep — an SCC with one successor picks it unconditionally.
        let mut sizes: Vec<u32> = vec![u32::MAX; num_sccs];
        fn size_of(sizes: &mut [u32], rows: &[Arc<BitSet>], s: usize) -> u32 {
            if sizes[s] == u32::MAX {
                sizes[s] = rows[s].count() as u32;
            }
            sizes[s]
        }
        for s in 0..num_sccs {
            let mut row = BitSet::new(n);
            if cyclic[s] {
                for &m in &members[s] {
                    row.insert(m as usize);
                }
            }
            let mut best = u32::MAX;
            for &m in &members[s] {
                for &t in &cfg.succs[m as usize] {
                    let ts = scc[t.index()] as usize;
                    if ts != s {
                        row.insert(t.index());
                        if merged[ts] != s as u32 {
                            merged[ts] = s as u32;
                            row.union_with(&rows[ts]);
                            // Largest-row successor becomes the base, so
                            // `row \ rows[base]` stays small.
                            if best == u32::MAX
                                || size_of(&mut sizes, &rows, ts)
                                    > size_of(&mut sizes, &rows, best as usize)
                            {
                                best = ts as u32;
                            }
                        }
                    }
                }
            }
            base[s] = best;
            rows.push(match interner {
                Some(i) => i.intern(row),
                None => Arc::new(row),
            });
        }

        Reachability {
            scc,
            rows,
            cyclic,
            base,
        }
    }

    /// `true` if a path of >= 1 edge leads from `from` to `to`.
    #[inline]
    pub fn reaches(&self, from: BlockId, to: BlockId) -> bool {
        self.rows[self.scc[from.index()] as usize].contains(to.index())
    }

    /// `true` if `b` lies on a CFG cycle.
    #[inline]
    pub fn in_cycle(&self, b: BlockId) -> bool {
        self.cyclic[self.scc[b.index()] as usize]
    }

    /// The reachable-block row of `b` (shared across its SCC).
    #[inline]
    pub fn row(&self, b: BlockId) -> &BitSet {
        &self.rows[self.scc[b.index()] as usize]
    }

    /// The SCC id of block `b`. Ids are dense (`0..num_sccs`) and
    /// assigned in reverse-topological order over the condensation.
    #[inline]
    pub fn scc_of(&self, b: BlockId) -> usize {
        self.scc[b.index()] as usize
    }

    /// Number of SCCs in the condensation.
    #[inline]
    pub fn num_sccs(&self) -> usize {
        self.rows.len()
    }

    /// The reachable-block row of SCC `s` — the single row every member
    /// of the SCC shares. Consumers aggregating per-source-block data
    /// (e.g. ordering counts) walk each row **once per SCC** instead of
    /// once per block.
    #[inline]
    pub fn scc_row(&self, s: usize) -> &BitSet {
        &self.rows[s]
    }

    /// `true` if SCC `s` is cyclic (more than one member, or a self
    /// edge). Equivalent to [`Reachability::in_cycle`] on any member.
    #[inline]
    pub fn scc_cyclic(&self, s: usize) -> bool {
        self.cyclic[s]
    }

    /// A successor SCC of `s` in the condensation whose row is a
    /// **subset** of `s`'s row (`None` for sinks). Ids are
    /// reverse-topological, so the base is always `< s` — per-SCC
    /// aggregates can be computed in one ascending sweep as
    /// `agg(s) = agg(base) + Σ over scc_row(s) \ scc_row(base)`, turning
    /// the quadratic all-rows walk into one proportional to the (small)
    /// row differences.
    #[inline]
    pub fn scc_base(&self, s: usize) -> Option<usize> {
        let b = self.base[s];
        (b != u32::MAX).then_some(b as usize)
    }
}

/// The cache-once per-function CFG substrate: a [`Cfg`] and the
/// [`Reachability`] table derived from it, built together exactly once
/// and then shared by reference across every stage that needs
/// control-flow structure (ordering generation, pruning, fence
/// minimization, reports).
///
/// The fence-placement pipeline owns one `FuncSubstrate` per function
/// (inside its per-function analysis context) for the lifetime of a
/// whole batch run; nothing downstream ever calls [`Cfg::new`] or
/// [`Reachability::new`] again.
#[derive(Clone, Debug)]
pub struct FuncSubstrate {
    /// Successor/predecessor maps.
    pub cfg: Cfg,
    /// All-pairs reachability over `cfg`, one shared row per SCC.
    pub reach: Reachability,
}

impl FuncSubstrate {
    /// Builds the CFG and its reachability table for `func`.
    pub fn new(func: &Function) -> Self {
        let cfg = Cfg::new(func);
        let reach = Reachability::new(&cfg);
        FuncSubstrate { cfg, reach }
    }

    /// Like [`FuncSubstrate::new`], but interns reachability rows through
    /// the shared `interner` so substrates of structurally identical
    /// functions (repeated corpus kernels in a fleet) share row storage.
    pub fn new_interned(func: &Function, interner: &RowInterner) -> Self {
        let cfg = Cfg::new(func);
        let reach = Reachability::new_interned(&cfg, interner);
        FuncSubstrate { cfg, reach }
    }
}

/// Iterative Tarjan: returns the SCC id of every block, ids assigned in
/// completion order (reverse-topological over the condensation).
fn tarjan_sccs(cfg: &Cfg) -> Vec<u32> {
    const UNVISITED: u32 = u32::MAX;
    let n = cfg.num_blocks();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut scc = vec![UNVISITED; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut num_sccs = 0u32;

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;
        call.push((start as u32, 0));

        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            let vi = v as usize;
            if *cursor < cfg.succs[vi].len() {
                let w = cfg.succs[vi][*cursor].index();
                *cursor += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, 0));
                } else if on_stack[w] {
                    low[vi] = low[vi].min(index[w]);
                }
            } else {
                if low[vi] == index[vi] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        scc[w as usize] = num_sccs;
                        if w == v {
                            break;
                        }
                    }
                    num_sccs += 1;
                }
                call.pop();
                if let Some(&mut (p, _)) = call.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }
    scc
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator; `idom[entry] == entry`; `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for the reachable portion of the CFG.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let rpo = cfg.rpo();
        // rpo may contain unreachable blocks at the tail; restrict to the
        // reachable prefix by recomputing reachable set.
        let mut reachable = BitSet::new(n);
        reachable.insert(cfg.entry.index());
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            for &s in &cfg.succs[b.index()] {
                if reachable.insert(s.index()) {
                    stack.push(s);
                }
            }
        }
        let rpo: Vec<BlockId> = rpo
            .into_iter()
            .filter(|b| reachable.contains(b.index()))
            .collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.index()] = Some(cfg.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry,
        }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_num: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_num[a.index()] > rpo_num[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_num[b.index()] > rpo_num[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    }

    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            // b unreachable: vacuously dominated by anything reachable;
            // report false to be conservative.
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }

    /// The immediate dominator of `b` (`entry` maps to itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Value;

    /// Builds a diamond: entry -> (then | else) -> join -> ret.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", 0);
        fb.if_then_else(Value::c(1), |_| {}, |_| {});
        fb.ret(None);
        fb.build()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[f.entry.index()].len(), 2);
        let join = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .expect("join block has two preds");
        let reach = Reachability::new(&cfg);
        assert!(reach.reaches(f.entry, BlockId::new(join)));
        assert!(!reach.reaches(BlockId::new(join), f.entry));
        assert!(!reach.in_cycle(f.entry));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.num_blocks());
    }

    #[test]
    fn loop_reachability() {
        let mut fb = FunctionBuilder::new("l", 0);
        fb.for_loop(0i64, 4i64, |_, _| {});
        fb.ret(None);
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let reach = Reachability::new(&cfg);
        let header = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .map(BlockId::new)
            .expect("loop header has 2 preds");
        assert!(reach.in_cycle(header), "loop header is on a cycle");
    }

    /// Reference implementation: per-block DFS (the seed algorithm),
    /// used to cross-check the SCC-based construction.
    fn dfs_reachability(cfg: &Cfg) -> Vec<BitSet> {
        let n = cfg.num_blocks();
        let mut rows = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for b in 0..n {
            let mut row = BitSet::new(n);
            stack.clear();
            for &s in &cfg.succs[b] {
                if row.insert(s.index()) {
                    stack.push(s);
                }
            }
            while let Some(cur) = stack.pop() {
                for &s in &cfg.succs[cur.index()] {
                    if row.insert(s.index()) {
                        stack.push(s);
                    }
                }
            }
            rows.push(row);
        }
        rows
    }

    fn cfg_from_edges(n: usize, edges: &[(usize, usize)]) -> Cfg {
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for &(a, b) in edges {
            succs[a].push(BlockId::new(b));
            preds[b].push(BlockId::new(a));
        }
        Cfg {
            succs,
            preds,
            entry: BlockId::new(0),
        }
    }

    #[test]
    fn scc_reachability_matches_dfs_reference() {
        let shapes: Vec<(usize, Vec<(usize, usize)>)> = vec![
            // Straight chain.
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
            // Self loop.
            (3, vec![(0, 1), (1, 1), (1, 2)]),
            // Two-block cycle plus exit.
            (4, vec![(0, 1), (1, 2), (2, 1), (2, 3)]),
            // Nested loops sharing a header.
            (
                6,
                vec![(0, 1), (1, 2), (2, 1), (2, 3), (3, 1), (3, 4), (4, 5)],
            ),
            // Disconnected component + multi-exit diamond.
            (7, vec![(0, 1), (0, 2), (1, 3), (2, 3), (5, 6), (6, 5)]),
            // Dense: every block to every later block, plus one back edge.
            (
                5,
                (0..5)
                    .flat_map(|a| (a + 1..5).map(move |b| (a, b)))
                    .chain([(4, 0)])
                    .collect(),
            ),
            // Parallel edges (condbr with equal targets).
            (3, vec![(0, 1), (0, 1), (1, 2), (1, 2)]),
        ];
        #[allow(clippy::needless_range_loop)] // a/b index two structures
        for (i, (n, edges)) in shapes.iter().enumerate() {
            let cfg = cfg_from_edges(*n, edges);
            let reference = dfs_reachability(&cfg);
            let reach = Reachability::new(&cfg);
            for a in 0..*n {
                for b in 0..*n {
                    assert_eq!(
                        reach.reaches(BlockId::new(a), BlockId::new(b)),
                        reference[a].contains(b),
                        "shape {i}: reaches({a}, {b})"
                    );
                }
                assert_eq!(
                    reach.in_cycle(BlockId::new(a)),
                    reference[a].contains(a),
                    "shape {i}: in_cycle({a})"
                );
            }
        }
    }

    /// Every non-sink SCC's base successor must (a) have a smaller id and
    /// (b) contribute a row that is a subset of the SCC's own row — the
    /// two invariants the ascending aggregate recurrence relies on.
    #[test]
    fn scc_base_is_smaller_and_subset() {
        let shapes: Vec<(usize, Vec<(usize, usize)>)> = vec![
            (5, vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
            (4, vec![(0, 1), (1, 2), (2, 1), (2, 3)]),
            (
                6,
                vec![(0, 1), (1, 2), (2, 1), (2, 3), (3, 1), (3, 4), (4, 5)],
            ),
            (7, vec![(0, 1), (0, 2), (1, 3), (2, 3), (5, 6), (6, 5)]),
            (
                5,
                (0..5)
                    .flat_map(|a| (a + 1..5).map(move |b| (a, b)))
                    .chain([(4, 0)])
                    .collect(),
            ),
        ];
        for (i, (n, edges)) in shapes.iter().enumerate() {
            let cfg = cfg_from_edges(*n, edges);
            let reach = Reachability::new(&cfg);
            for s in 0..reach.num_sccs() {
                match reach.scc_base(s) {
                    None => {
                        // A sink SCC: no outgoing condensation edge.
                        for b in 0..*n {
                            if reach.scc_of(BlockId::new(b)) == s {
                                for &t in &cfg.succs[b] {
                                    assert_eq!(
                                        reach.scc_of(t),
                                        s,
                                        "shape {i}: sink SCC {s} has an external succ"
                                    );
                                }
                            }
                        }
                    }
                    Some(b) => {
                        assert!(b < s, "shape {i}: base {b} of SCC {s} not smaller");
                        let (own, base) = (reach.scc_row(s), reach.scc_row(b));
                        for bit in base.iter() {
                            assert!(
                                own.contains(bit),
                                "shape {i}: row({b}) ⊄ row({s}) at bit {bit}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn scc_rows_shared_within_cycles() {
        // 1 <-> 2 is one SCC: both blocks must share one row including both.
        let cfg = cfg_from_edges(4, &[(0, 1), (1, 2), (2, 1), (2, 3)]);
        let reach = Reachability::new(&cfg);
        assert!(std::ptr::eq(
            reach.row(BlockId::new(1)),
            reach.row(BlockId::new(2))
        ));
        assert!(reach.row(BlockId::new(1)).contains(1));
        assert!(reach.row(BlockId::new(1)).contains(2));
        assert!(reach.row(BlockId::new(1)).contains(3));
        assert!(!reach.row(BlockId::new(1)).contains(0));
    }

    #[test]
    fn interned_rows_dedup_identical_functions() {
        let f = diamond();
        let interner = RowInterner::new();
        let a = FuncSubstrate::new_interned(&f, &interner);
        let rows_after_one = interner.unique_rows();
        let hits_after_one = interner.hits();
        let b = FuncSubstrate::new_interned(&f, &interner);
        assert_eq!(
            interner.unique_rows(),
            rows_after_one,
            "an identical function must add no new rows"
        );
        assert!(
            interner.hits() > hits_after_one,
            "second build hits the store"
        );
        assert!(interner.retained_words() > 0);
        // Storage is shared across the two functions…
        assert!(std::ptr::eq(a.reach.row(f.entry), b.reach.row(f.entry)));
        // …and queries are unaffected by interning.
        let plain = FuncSubstrate::new(&f);
        for x in 0..f.num_blocks() {
            for y in 0..f.num_blocks() {
                assert_eq!(
                    a.reach.reaches(BlockId::new(x), BlockId::new(y)),
                    plain.reach.reaches(BlockId::new(x), BlockId::new(y)),
                    "reaches({x}, {y})"
                );
            }
            assert_eq!(
                a.reach.in_cycle(BlockId::new(x)),
                plain.reach.in_cycle(BlockId::new(x))
            );
        }
    }

    #[test]
    fn dominators_diamond() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let join = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .map(BlockId::new)
            .unwrap();
        assert!(dom.dominates(f.entry, join));
        assert!(dom.dominates(f.entry, f.entry));
        // Neither arm dominates the join.
        for &arm in &cfg.succs[f.entry.index()] {
            assert!(!dom.dominates(arm, join));
            assert_eq!(dom.idom(arm), Some(f.entry));
        }
        assert_eq!(dom.idom(join), Some(f.entry));
    }
}
