//! Control-flow-graph utilities: successors/predecessors, reverse
//! postorder, reachability (the "lookup table" the paper's ordering
//! generation queries), and dominators (used by the verifier).

use crate::func::Function;
use crate::ids::BlockId;
use crate::util::BitSet;

/// Successor / predecessor maps of a function's CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// `succs[b]` = successor blocks of `b`.
    pub succs: Vec<Vec<BlockId>>,
    /// `preds[b]` = predecessor blocks of `b`.
    pub preds: Vec<Vec<BlockId>>,
    /// The function's entry block.
    pub entry: BlockId,
}

impl Cfg {
    /// Builds the CFG of `func` from its block terminators.
    pub fn new(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, block) in func.iter_blocks() {
            if let Some(&term) = block.insts.last() {
                for s in func.inst(term).kind.successors() {
                    succs[bid.index()].push(s);
                    preds[s.index()].push(bid);
                }
            }
        }
        Cfg {
            succs,
            preds,
            entry: func.entry,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Reverse postorder starting from the entry block. Unreachable blocks
    /// are appended at the end (in id order) so every block appears exactly
    /// once.
    pub fn rpo(&self) -> Vec<BlockId> {
        let n = self.num_blocks();
        let mut visited = BitSet::new(n);
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit stack of (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        visited.insert(self.entry.index());
        stack.push((self.entry, 0));
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs[b.index()].len() {
                let s = self.succs[b.index()][*i];
                *i += 1;
                if visited.insert(s.index()) {
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        for b in 0..n {
            if !visited.contains(b) {
                post.push(BlockId::new(b));
            }
        }
        post
    }
}

/// Transitive reachability over the CFG: `reaches(a, b)` means there is a
/// path of **one or more** edges from `a` to `b`. In particular
/// `reaches(b, b)` holds iff `b` lies on a cycle.
///
/// This is the lookup table that ordering generation consults (paper §4.3:
/// "Whether there exists a path between basic blocks is determined prior to
/// this process with an examination of the CFG, to create a lookup table of
/// reachability").
#[derive(Clone, Debug)]
pub struct Reachability {
    rows: Vec<BitSet>,
}

impl Reachability {
    /// Computes all-pairs reachability by a DFS from every block.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let mut rows = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for b in 0..n {
            let mut row = BitSet::new(n);
            stack.clear();
            // Seed with successors (path length >= 1).
            for &s in &cfg.succs[b] {
                if row.insert(s.index()) {
                    stack.push(s);
                }
            }
            while let Some(cur) = stack.pop() {
                for &s in &cfg.succs[cur.index()] {
                    if row.insert(s.index()) {
                        stack.push(s);
                    }
                }
            }
            rows.push(row);
        }
        Reachability { rows }
    }

    /// `true` if a path of >= 1 edge leads from `from` to `to`.
    #[inline]
    pub fn reaches(&self, from: BlockId, to: BlockId) -> bool {
        self.rows[from.index()].contains(to.index())
    }

    /// `true` if `b` lies on a CFG cycle.
    #[inline]
    pub fn in_cycle(&self, b: BlockId) -> bool {
        self.reaches(b, b)
    }
}

/// Immediate-dominator tree (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` — immediate dominator; `idom[entry] == entry`; `None` for
    /// unreachable blocks.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for the reachable portion of the CFG.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let rpo = cfg.rpo();
        // rpo may contain unreachable blocks at the tail; restrict to the
        // reachable prefix by recomputing reachable set.
        let mut reachable = BitSet::new(n);
        reachable.insert(cfg.entry.index());
        let mut stack = vec![cfg.entry];
        while let Some(b) = stack.pop() {
            for &s in &cfg.succs[b.index()] {
                if reachable.insert(s.index()) {
                    stack.push(s);
                }
            }
        }
        let rpo: Vec<BlockId> = rpo
            .into_iter()
            .filter(|b| reachable.contains(b.index()))
            .collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[cfg.entry.index()] = Some(cfg.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &cfg.preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_num, p, cur),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: cfg.entry,
        }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_num: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_num[a.index()] > rpo_num[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_num[b.index()] > rpo_num[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    }

    /// `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            // b unreachable: vacuously dominated by anything reachable;
            // report false to be conservative.
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }

    /// The immediate dominator of `b` (`entry` maps to itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Value;

    /// Builds a diamond: entry -> (then | else) -> join -> ret.
    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("d", 0);
        fb.if_then_else(Value::c(1), |_| {}, |_| {});
        fb.ret(None);
        fb.build()
    }

    #[test]
    fn diamond_cfg() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[f.entry.index()].len(), 2);
        let join = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .expect("join block has two preds");
        let reach = Reachability::new(&cfg);
        assert!(reach.reaches(f.entry, BlockId::new(join)));
        assert!(!reach.reaches(BlockId::new(join), f.entry));
        assert!(!reach.in_cycle(f.entry));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.rpo();
        assert_eq!(rpo[0], f.entry);
        assert_eq!(rpo.len(), f.num_blocks());
    }

    #[test]
    fn loop_reachability() {
        let mut fb = FunctionBuilder::new("l", 0);
        fb.for_loop(0i64, 4i64, |_, _| {});
        fb.ret(None);
        let f = fb.build();
        let cfg = Cfg::new(&f);
        let reach = Reachability::new(&cfg);
        let header = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .map(BlockId::new)
            .expect("loop header has 2 preds");
        assert!(reach.in_cycle(header), "loop header is on a cycle");
    }

    #[test]
    fn dominators_diamond() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        let join = cfg
            .preds
            .iter()
            .position(|p| p.len() == 2)
            .map(BlockId::new)
            .unwrap();
        assert!(dom.dominates(f.entry, join));
        assert!(dom.dominates(f.entry, f.entry));
        // Neither arm dominates the join.
        for &arm in &cfg.succs[f.entry.index()] {
            assert!(!dom.dominates(arm, join));
            assert_eq!(dom.idom(arm), Some(f.entry));
        }
        assert_eq!(dom.idom(join), Some(f.entry));
    }
}
