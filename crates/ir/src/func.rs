//! Functions, basic blocks, and per-function instruction storage.

use crate::ids::{BlockId, InstId, LocalId};
use crate::inst::InstKind;

/// One instruction, stored in the function's flat instruction table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
}

/// A basic block: a straight-line sequence of instructions ending in a
/// single terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Optional human-readable label (used by printer/parser).
    pub name: String,
    /// Instruction ids in execution order; the last is the terminator.
    pub insts: Vec<InstId>,
}

/// The position of an instruction inside its function.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct InstPos {
    /// Enclosing block.
    pub block: BlockId,
    /// Index within [`Block::insts`].
    pub index: usize,
}

/// A function: parameters, local register slots, blocks, instructions.
#[derive(Clone, Debug)]
pub struct Function {
    /// Unique name within the module.
    pub name: String,
    /// Number of incoming arguments (`Value::Arg(0..n)`).
    pub num_params: u16,
    /// Names of mutable local register slots.
    pub locals: Vec<String>,
    /// Basic blocks; `entry` is executed first.
    pub blocks: Vec<Block>,
    /// Flat instruction table indexed by [`InstId`].
    pub insts: Vec<Inst>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// Creates an empty function with a single (empty) entry block.
    pub fn new(name: impl Into<String>, num_params: u16) -> Self {
        Function {
            name: name.into(),
            num_params,
            locals: Vec::new(),
            blocks: vec![Block {
                name: "entry".to_string(),
                insts: Vec::new(),
            }],
            insts: Vec::new(),
            entry: BlockId::new(0),
        }
    }

    /// Immutable access to an instruction.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to an instruction.
    #[inline]
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Immutable access to a block.
    #[inline]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of instructions (the `InstId` universe size).
    #[inline]
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of blocks (the `BlockId` universe size).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates `(BlockId, &Block)` in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::new(i), b))
    }

    /// Iterates `(InstId, &Inst)` over all instructions in id order.
    ///
    /// Note: id order is creation order, not necessarily execution order;
    /// use [`Function::iter_insts_in_order`] for block-sequential order.
    pub fn iter_insts(&self) -> impl Iterator<Item = (InstId, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (InstId::new(i), inst))
    }

    /// Iterates instructions block by block, in execution order within each.
    pub fn iter_insts_in_order(&self) -> impl Iterator<Item = (BlockId, InstId, &Inst)> {
        self.iter_blocks()
            .flat_map(move |(bid, b)| b.insts.iter().map(move |&iid| (bid, iid, self.inst(iid))))
    }

    /// Computes the position table: for every instruction, its block and
    /// in-block index. Instructions not attached to a block map to `None`.
    pub fn positions(&self) -> Vec<Option<InstPos>> {
        let mut pos = vec![None; self.insts.len()];
        for (bid, block) in self.iter_blocks() {
            for (idx, &iid) in block.insts.iter().enumerate() {
                pos[iid.index()] = Some(InstPos {
                    block: bid,
                    index: idx,
                });
            }
        }
        pos
    }

    /// The terminator instruction of a block, if the block is non-empty.
    pub fn terminator(&self, block: BlockId) -> Option<InstId> {
        self.block(block)
            .insts
            .last()
            .copied()
            .filter(|&iid| self.inst(iid).kind.is_terminator())
    }

    /// All `WriteLocal` instructions targeting `local`.
    ///
    /// This is the flow-insensitive "reaching definitions" used by the
    /// backwards slicer for register reads: conservative, exactly like the
    /// paper's use of alias analysis to find `potential_writers`.
    pub fn writers_of_local(&self, local: LocalId) -> Vec<InstId> {
        self.iter_insts()
            .filter_map(|(iid, inst)| match inst.kind {
                InstKind::WriteLocal { local: l, .. } if l == local => Some(iid),
                _ => None,
            })
            .collect()
    }

    /// Looks up a local slot by name.
    pub fn local_by_name(&self, name: &str) -> Option<LocalId> {
        self.locals.iter().position(|n| n == name).map(LocalId::new)
    }
}

#[cfg(test)]
mod tests {

    use crate::builder::FunctionBuilder;
    use crate::value::Value;

    #[test]
    fn positions_and_terminator() {
        let mut fb = FunctionBuilder::new("f", 0);
        let l = fb.local("x");
        fb.write_local(l, Value::c(1));
        let v = fb.read_local(l);
        fb.ret(Some(v));
        let f = fb.build();

        let pos = f.positions();
        assert!(pos.iter().all(|p| p.is_some()));
        let term = f.terminator(f.entry).expect("entry has terminator");
        assert!(f.inst(term).kind.is_terminator());
    }

    #[test]
    fn writers_of_local_finds_all() {
        let mut fb = FunctionBuilder::new("f", 0);
        let l = fb.local("x");
        fb.write_local(l, Value::c(1));
        fb.write_local(l, Value::c(2));
        let m = fb.local("y");
        fb.write_local(m, Value::c(3));
        fb.ret(None);
        let f = fb.build();
        assert_eq!(f.writers_of_local(l).len(), 2);
        assert_eq!(f.writers_of_local(m).len(), 1);
        assert_eq!(f.local_by_name("y"), Some(m));
        assert_eq!(f.local_by_name("zz"), None);
    }

    #[test]
    fn iter_insts_in_order_is_block_sequential() {
        let mut fb = FunctionBuilder::new("f", 0);
        let bb1 = fb.new_block("next");
        fb.br(bb1);
        fb.switch_to(bb1);
        fb.ret(None);
        let f = fb.build();
        let order: Vec<_> = f.iter_insts_in_order().map(|(b, _, _)| b).collect();
        assert_eq!(order, vec![f.entry, bb1]);
    }
}
