//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of criterion's API its benches use:
//! [`Criterion`], [`Bencher::iter`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark runs one untimed warmup batch, then
//! `sample_size` timed samples; the reported numbers are the minimum,
//! median, and maximum per-iteration wall time. Output mimics criterion's
//! `name  time: [lo mid hi]` line so humans and scripts can read it the
//! same way.

use std::time::{Duration, Instant};

/// Measures one benchmark routine.
pub struct Bencher {
    /// Per-sample wall times, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
    /// Iterations per sample (chosen so a sample is long enough to time).
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size,
        }
    }

    /// Times `routine`, criterion-style: warm up, pick an iteration count
    /// that makes one sample take ≳1ms, then record `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: grow the batch until it costs ≥1ms.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Per-iteration `(min, median, max)` over the recorded samples.
    fn stats(&self) -> Option<(f64, f64, f64)> {
        if self.samples.is_empty() {
            return None;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let med = per_iter[per_iter.len() / 2];
        Some((min, med, max))
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

fn report(name: &str, b: &Bencher) {
    match b.stats() {
        Some((lo, mid, hi)) => println!(
            "{name:<40} time: [{} {} {}]",
            fmt_time(lo),
            fmt_time(mid),
            fmt_time(hi)
        ),
        None => println!("{name:<40} time: [no samples]"),
    }
}

/// Benchmark driver: holds configuration, runs and reports benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            c: self,
        }
    }
}

/// Identifies one benchmark within a group (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{param}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.c.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs one named benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.c.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Finishes the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(1 + 1));
        let (lo, mid, hi) = b.stats().unwrap();
        assert!(lo <= mid && mid <= hi);
        assert!(lo > 0.0);
    }

    #[test]
    fn group_and_function_api_compile() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("smoke", |b| b.iter(|| 42u64.wrapping_mul(7)));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 1), &1usize, |b, &n| b.iter(|| n + 1));
        g.finish();
    }
}
