//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest's API its property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`any`], [`collection::vec`], [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: generation is a
//! deterministic splitmix64 stream seeded per test case, so failures are
//! reproducible run-to-run.

use std::ops::Range;

/// Deterministic RNG (splitmix64) driving value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0xd1b5_4a32_d192_ed03),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A generator of values of one type.
pub trait Strategy: Sized {
    /// The generated type.
    type Value;

    /// Produces one value from the RNG stream.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty range strategy");
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u32, u64, i64, i32);

macro_rules! tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Strategy generating arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            assert!(span > 0, "empty vec size range");
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Generates `Vec`s of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// Per-`proptest!` configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything property tests usually import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

/// Asserts inside a `proptest!` body; failure reports the generated value.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{:?}` != `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        $crate::prop_assert!(lhs == rhs, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(pat in strategy) { body }`
/// becomes a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($pat:pat in $strat:expr) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let strat = $strat;
            for case in 0..cfg.cases {
                // Mix the test name into the seed so sibling tests see
                // different streams.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut rng = $crate::TestRng::from_seed(seed ^ case as u64);
                let value = $crate::Strategy::new_value(&strat, &mut rng);
                let shown = format!("{:?}", value);
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    let $pat = value;
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!(
                        "proptest case {case} for `{}` failed: {msg}\n  input: {shown}",
                        stringify!($name)
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::from_seed(7);
        for _ in 0..100 {
            let v = Strategy::new_value(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = crate::TestRng::from_seed(9);
        let strat = crate::collection::vec(any::<bool>(), 1..8);
        for _ in 0..50 {
            let v = Strategy::new_value(&strat, &mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0usize..100) {
            prop_assert!(x < 100);
            prop_assert_eq!(x + 1, x + 1);
        }

        #[test]
        fn flat_map_composes(v in (1usize..4).prop_flat_map(|n: usize| crate::collection::vec(0usize..10, n..(n + 1)))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
        }
    }
}
