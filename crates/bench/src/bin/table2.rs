//! Regenerates **Table II**: acquire-signature breakdown of the nine
//! synchronization kernels.
//!
//! ```text
//! cargo run -p fence-bench --release --bin table2
//! ```

fn mark(b: bool) -> &'static str {
    if b {
        "Y"
    } else {
        "-"
    }
}

fn main() {
    println!("Table II — acquires found in common synchronization kernels");
    println!(
        "{:<20} {:>5} {:>5} {:>10}   Source",
        "Kernel", "Addr", "Ctrl", "Pure Addr"
    );
    let mut mismatches = 0;
    for row in fence_bench::table2() {
        let ok = (row.addr, row.ctrl, row.pure_addr) == row.expect;
        if !ok {
            mismatches += 1;
        }
        println!(
            "{:<20} {:>5} {:>5} {:>10}   {}{}",
            row.name,
            mark(row.addr),
            mark(row.ctrl),
            mark(row.pure_addr),
            row.citation,
            if ok { "" } else { "   << MISMATCH vs paper" }
        );
    }
    println!();
    if mismatches == 0 {
        println!("All 9 rows match the paper (Addr for Chase-Lev/CLH/MCS/M&S; Ctrl everywhere; no pure-address acquires).");
    } else {
        println!("{mismatches} rows differ from the paper.");
    }
}
