//! Regenerates **Figure 8**: breakdown of orderings by type for Pensieve
//! (= 100%), Address+Control, and Control, per program.
//!
//! ```text
//! cargo run -p fence-bench --release --bin fig8
//! ```

use corpus::Params;
use fence_bench::{pct, static_rows, summary};
use fenceplace::Variant;

fn row4(label: &str, o: [usize; 4], total: usize) -> String {
    let f = |x: usize| {
        if total == 0 {
            "  0.0%".to_string()
        } else {
            format!("{:5.1}%", 100.0 * x as f64 / total as f64)
        }
    };
    format!(
        "  {label:<14} r->r {}  r->w {}  w->r {}  w->w {}  (total {})",
        f(o[0]),
        f(o[1]),
        f(o[2]),
        f(o[3]),
        o.iter().sum::<usize>()
    )
}

fn main() {
    let p = Params::default();
    let rows = static_rows(&p);
    println!("Figure 8 — orderings by type, as % of Pensieve's orderings");
    for r in &rows {
        let total: usize = r.ords_pensieve.iter().sum();
        println!("{}", r.name);
        println!("{}", row4("Pensieve", r.ords_pensieve, total));
        println!("{}", row4("Addr+Control", r.ords_ac, total));
        println!("{}", row4("Control", r.ords_ctrl, total));
    }
    let g_ac = summary(
        rows.iter()
            .map(|r| r.ordering_fraction(Variant::AddressControl)),
    );
    let g_c = summary(rows.iter().map(|r| r.ordering_fraction(Variant::Control)));
    println!();
    println!(
        "geomean orderings remaining: Address+Control {}, Control {}",
        pct(g_ac),
        pct(g_c)
    );
    println!("Paper: ~68% remain under Address+Control, ~34% under Control;");
    println!("r->w and w->w are untouched by pruning (writes are conservative releases).");
}
