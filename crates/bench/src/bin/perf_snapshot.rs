//! Wall-clock snapshot of the static-analysis pipeline, stage by stage,
//! over the full corpus plus a synthetic scaling point. Emits
//! `BENCH_analysis.json` so future PRs have a perf trajectory to compare
//! against:
//!
//! ```text
//! cargo run --release -p fence_bench --bin perf_snapshot
//! ```
//!
//! Stages: parse (textual-IR ingestion of the module's printed form, the
//! unit of work the streamed scheduler overlaps with analysis),
//! points-to (function-sharded worklist Andersen), escape
//! closure, acquire detection (Address+Control — the superset detector),
//! cfg (the cache-once `FuncSubstrate` builds: `Cfg` + `Reachability`,
//! once per function, exactly as the batch pipeline amortizes them),
//! ordering generation over the prebuilt substrates, and pruning + fence
//! minimization (x86-TSO). Each stage is run `REPS` times and the
//! minimum is reported, which is the usual low-noise estimator for short
//! deterministic workloads.
//!
//! An extra `overlap` line times the cfg/points-to phase the way the
//! pipeline actually schedules it — the module analysis and every
//! `FuncSubstrate` build as **one** pool pass. It re-measures work the
//! serial stages already cover, so it sits beside them in the report but
//! is excluded from `total`.
//!
//! The program list comes from the corpus manifest builder
//! (`kernel:* corpus:* synthetic:{4000,16000}`), and the snapshot also
//! times the **fleet driver** against the per-module batch loop over the
//! 26 kernel+corpus modules (the multi-module workload the fleet
//! schedules as one cross-module unit list).
//!
//! A `stream` section times the same multi-module workload fed as
//! printed texts: serial vs pooled parse throughput, and the full
//! resident streamed run (`window: None`) against the windowed admission
//! scheduler — recorded, like `fleet`, but not gated.
//!
//! A `service` section times the analysis service (`fenceplace serve`'s
//! core) over the same workload: a cold pass through a fresh
//! content-hashed cache vs a warm re-request of the identical corpus
//! (served from cache with zero pipeline work) — recorded, not gated.
//!
//! ## `--check` mode (the CI perf gate)
//!
//! ```text
//! cargo run --release -p fence_bench --bin perf_snapshot -- --check --tolerance 1.5
//! ```
//!
//! Re-measures the snapshot and compares each stage's corpus-wide total
//! against the committed `BENCH_analysis.json`. Exits non-zero if any
//! stage regressed by more than the tolerance factor; never rewrites the
//! committed file. Fleet timings are recorded but not gated (the
//! fleet-vs-loop ratio is hardware-dependent).

use corpus::Params;
use fence_analysis::{EscapeInfo, ModuleAnalysis, PointsTo};
use fence_ir::{FuncSubstrate, Module};
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::minimize::minimize_function;
use fenceplace::orderings::FuncOrderings;
use fenceplace::{
    run_fleet_streamed, run_fleet_with, run_pipeline_batch, FleetJob, FleetOptions, PipelineConfig,
    Service, ServiceOptions, StreamItem, TargetModel, Variant,
};
use std::time::Instant;

const REPS: usize = 3;
const BENCH_PATH: &str = "BENCH_analysis.json";
/// Admission window for the streamed timing section.
const STREAM_WINDOW: usize = 4;
const STAGES: [&str; 9] = [
    "parse",
    "points_to",
    "escape",
    "acquire",
    "cfg",
    "overlap",
    "orderings",
    "minimize",
    "total",
];

#[derive(Default, Clone, Copy)]
struct StageMs {
    /// Parsing the module's printed textual form — the ingest work the
    /// streamed scheduler runs as a pool unit.
    parse: f64,
    points_to: f64,
    escape: f64,
    acquire: f64,
    cfg: f64,
    /// Wall clock of the pipeline's *overlapped* analysis+substrate pass
    /// (one unit list: the module analysis plus every `FuncSubstrate`).
    /// Re-times work already attributed to `points_to`/`escape`/`cfg`,
    /// so it is reported alongside them but excluded from `total`.
    overlap: f64,
    orderings: f64,
    minimize: f64,
}

impl StageMs {
    fn total(&self) -> f64 {
        self.parse
            + self.points_to
            + self.escape
            + self.acquire
            + self.cfg
            + self.orderings
            + self.minimize
    }

    fn add(&mut self, o: &StageMs) {
        self.parse += o.parse;
        self.points_to += o.points_to;
        self.escape += o.escape;
        self.acquire += o.acquire;
        self.cfg += o.cfg;
        self.overlap += o.overlap;
        self.orderings += o.orderings;
        self.minimize += o.minimize;
    }

    fn get(&self, stage: &str) -> f64 {
        match stage {
            "parse" => self.parse,
            "points_to" => self.points_to,
            "escape" => self.escape,
            "acquire" => self.acquire,
            "cfg" => self.cfg,
            "overlap" => self.overlap,
            "orderings" => self.orderings,
            "minimize" => self.minimize,
            "total" => self.total(),
            _ => unreachable!("unknown stage {stage}"),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"parse\": {:.3}, \"points_to\": {:.3}, \"escape\": {:.3}, \"acquire\": {:.3}, \"cfg\": {:.3}, \"overlap\": {:.3}, \"orderings\": {:.3}, \"minimize\": {:.3}, \"total\": {:.3}}}",
            self.parse, self.points_to, self.escape, self.acquire, self.cfg, self.overlap, self.orderings, self.minimize, self.total()
        )
    }
}

fn time_min<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn snapshot(module: &Module) -> StageMs {
    let text = fence_ir::printer::print_module(module);
    let mut s = StageMs {
        parse: time_min(|| fence_ir::parser::parse_module(&text).expect("printed module parses")),
        points_to: time_min(|| PointsTo::analyze(module)),
        ..StageMs::default()
    };
    let pt = PointsTo::analyze(module);
    s.escape = time_min(|| EscapeInfo::analyze(module, &pt));
    let an = ModuleAnalysis::run(module);
    s.acquire = time_min(|| {
        for (fid, _) in module.iter_funcs() {
            std::hint::black_box(
                detect_acquires(
                    module,
                    &an.points_to,
                    &an.escape,
                    fid,
                    DetectMode::AddressControl,
                )
                .count(),
            );
        }
    });
    // The cache-once CFG substrate: built exactly once per function per
    // batch by the pipeline; measured as its own stage here.
    s.cfg = time_min(|| {
        for (_, func) in module.iter_funcs() {
            std::hint::black_box(FuncSubstrate::new(func));
        }
    });
    // The overlapped cfg/points-to phase exactly as the batch pipeline
    // schedules it: one pool pass over `n + 1` units, unit 0 the whole
    // module analysis (points-to + escape), units `1..=n` the substrate
    // builds. On a multi-core host this wall clock approaches
    // `max(analysis, substrates)`; serial it degrades to the sum.
    s.overlap = time_min(|| {
        let n = module.funcs.len();
        let next = std::sync::atomic::AtomicUsize::new(0);
        fence_ir::pool::ThreadPool::global().run_scoped(n + 1, &|| loop {
            let u = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if u > n {
                break;
            }
            if u == 0 {
                std::hint::black_box(ModuleAnalysis::run_on(module, false));
            } else {
                std::hint::black_box(FuncSubstrate::new(
                    module.func(fence_ir::FuncId::new(u - 1)),
                ));
            }
        });
    });
    let substrates: Vec<FuncSubstrate> = module
        .iter_funcs()
        .map(|(_, func)| FuncSubstrate::new(func))
        .collect();
    s.orderings = time_min(|| {
        for (fid, _) in module.iter_funcs() {
            std::hint::black_box(
                FuncOrderings::generate(module, &an.escape, fid, &substrates[fid.index()]).counts(),
            );
        }
    });
    // Pruning + minimization against the Control detector on x86-TSO (the
    // pipeline default).
    let sync: Vec<_> = module
        .iter_funcs()
        .map(|(fid, _)| {
            detect_acquires(module, &an.points_to, &an.escape, fid, DetectMode::Control).sync_reads
        })
        .collect();
    let ords: Vec<_> = module
        .iter_funcs()
        .map(|(fid, _)| FuncOrderings::generate(module, &an.escape, fid, &substrates[fid.index()]))
        .collect();
    s.minimize = time_min(|| {
        for (fid, func) in module.iter_funcs() {
            let kept = ords[fid.index()].prune(&sync[fid.index()]);
            // The fused split: aggregate computation (shared with
            // counting in the pipeline's per-variant cache) is
            // attributed here, to the consumer.
            let aggs = kept.aggregates();
            let entry = !sync[fid.index()].is_empty();
            std::hint::black_box(minimize_function(
                func,
                fid,
                &kept,
                &aggs,
                TargetModel::X86Tso,
                entry,
            ));
        }
    });
    s
}

/// Fleet-vs-loop timing over the multi-module kernel+corpus workload:
/// `(fleet_ms, loop_ms)`, both minima over `REPS` runs of the same
/// 3-variant sweep.
fn fleet_vs_loop(entries: &[corpus::ManifestEntry]) -> (f64, f64) {
    let configs = vec![
        PipelineConfig::for_variant(Variant::Pensieve),
        PipelineConfig::for_variant(Variant::AddressControl),
        PipelineConfig::for_variant(Variant::Control),
    ];
    let jobs: Vec<FleetJob<'_>> = entries
        .iter()
        .map(|e| FleetJob::new(e.name.clone(), &e.module, configs.clone()))
        .collect();
    let fleet_ms = time_min(|| run_fleet_with(&jobs, true));
    let loop_ms = time_min(|| {
        for e in entries {
            std::hint::black_box(run_pipeline_batch(&e.module, &configs));
        }
    });
    (fleet_ms, loop_ms)
}

/// Streamed-ingestion timings over the multi-module workload fed as
/// printed texts: serial vs pooled parse throughput, and resident
/// (`window: None`) vs windowed streamed runs of the same single-config
/// fleet. Demonstrates that windowed admission with off-thread parsing
/// keeps wall-clock at (or under, multi-core) the resident run.
fn stream_snapshot(entries: &[corpus::ManifestEntry]) -> String {
    let texts: Vec<(String, String)> = entries
        .iter()
        .map(|e| (e.name.clone(), fence_ir::printer::print_module(&e.module)))
        .collect();
    let strs: Vec<&str> = texts.iter().map(|(_, t)| t.as_str()).collect();
    let parse_serial = time_min(|| fence_ir::parser::parse_modules(&strs, false));
    let parse_pooled = time_min(|| fence_ir::parser::parse_modules(&strs, true));

    let configs = vec![PipelineConfig::for_variant(Variant::Control)];
    let run = |window: Option<usize>| {
        time_min(|| {
            let items: Vec<StreamItem> = texts
                .iter()
                .map(|(name, text)| StreamItem::Text {
                    name: name.clone(),
                    text: text.clone(),
                })
                .collect();
            let opts = FleetOptions {
                parallel: true,
                window,
                ..FleetOptions::default()
            };
            run_fleet_streamed(items, &configs, &opts, |_, _| {})
        })
    };
    let resident_ms = run(None);
    let streamed_ms = run(Some(STREAM_WINDOW));
    format!(
        "{{\"modules\": {}, \"window\": {STREAM_WINDOW}, \"parse_serial_ms\": {parse_serial:.3}, \
         \"parse_pooled_ms\": {parse_pooled:.3}, \"resident_ms\": {resident_ms:.3}, \
         \"streamed_ms\": {streamed_ms:.3}}}",
        texts.len()
    )
}

/// Analysis-service timings over the multi-module workload fed as
/// printed texts: a cold pass through a fresh service (content hashing,
/// parse, validate, full pipeline) vs a warm re-request of the same
/// corpus, which the content-hashed cache answers with zero pipeline
/// work (`tests/service.rs` pins the zero, this pins the wall-clock
/// payoff).
fn service_snapshot(entries: &[corpus::ManifestEntry]) -> String {
    let texts: Vec<(String, String)> = entries
        .iter()
        .map(|e| (e.name.clone(), fence_ir::printer::print_module(&e.module)))
        .collect();
    let configs = vec![PipelineConfig::for_variant(Variant::Control)];
    let cold_ms = time_min(|| {
        let mut service = Service::new(ServiceOptions::default());
        for (name, text) in &texts {
            std::hint::black_box(service.analyze(name, text, &configs, None));
        }
    });
    let mut warm = Service::new(ServiceOptions::default());
    for (name, text) in &texts {
        warm.analyze(name, text, &configs, None);
    }
    let warm_ms = time_min(|| {
        for (name, text) in &texts {
            std::hint::black_box(warm.analyze(name, text, &configs, None));
        }
    });
    format!(
        "{{\"modules\": {}, \"cold_ms\": {cold_ms:.3}, \"warm_ms\": {warm_ms:.3}, \"speedup\": {:.3}}}",
        texts.len(),
        cold_ms / warm_ms.max(1e-9)
    )
}

fn measure() -> (Vec<(String, StageMs)>, StageMs, String) {
    let p = Params::default();
    let mut rows: Vec<(String, StageMs)> = Vec::new();
    let multi = corpus::manifest::full_fleet(&p);
    for e in &multi {
        rows.push((e.name.clone(), snapshot(&e.module)));
    }
    for spec in ["synthetic:4000", "synthetic:16000"] {
        for e in corpus::resolve_spec(spec, &p).expect("builtin spec") {
            rows.push((e.name, snapshot(&e.module)));
        }
    }

    let mut totals = StageMs::default();
    for (_, s) in &rows {
        totals.add(s);
    }

    let (fleet_ms, loop_ms) = fleet_vs_loop(&multi);
    let fleet_json = format!(
        "{{\"modules\": {}, \"configs\": 3, \"fleet_ms\": {fleet_ms:.3}, \"loop_ms\": {loop_ms:.3}, \"speedup\": {:.3}}}",
        multi.len(),
        loop_ms / fleet_ms.max(1e-9)
    );

    let mut out = String::from("{\n  \"unit\": \"ms\",\n  \"programs\": [\n");
    for (i, (name, s)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"stages\": {}}}{}\n",
            s.json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ],\n  \"totals\": {},\n", totals.json()));
    out.push_str(&format!("  \"fleet\": {fleet_json},\n"));
    out.push_str(&format!("  \"stream\": {},\n", stream_snapshot(&multi)));
    out.push_str(&format!(
        "  \"service\": {}\n}}\n",
        service_snapshot(&multi)
    ));
    (rows, totals, out)
}

/// Pulls `"stage": <num>` out of the committed snapshot's `"totals"`
/// line. The file is machine-written by this binary, so a line-anchored
/// scan is exact, not heuristic.
fn committed_totals(text: &str) -> Result<StageMs, String> {
    let line = text
        .lines()
        .find(|l| l.trim_start().starts_with("\"totals\""))
        .ok_or("no \"totals\" line in committed snapshot")?;
    let field = |key: &str| -> Result<f64, String> {
        let pat = format!("\"{key}\": ");
        let at = line
            .find(&pat)
            .ok_or_else(|| format!("no `{key}` in totals line"))?;
        let rest = &line[at + pat.len()..];
        let end = rest
            .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end]
            .parse()
            .map_err(|e| format!("bad `{key}` value: {e}"))
    };
    Ok(StageMs {
        parse: field("parse")?,
        points_to: field("points_to")?,
        escape: field("escape")?,
        acquire: field("acquire")?,
        cfg: field("cfg")?,
        overlap: field("overlap")?,
        orderings: field("orderings")?,
        minimize: field("minimize")?,
    })
}

fn check(tolerance: f64) -> i32 {
    let committed = match std::fs::read_to_string(BENCH_PATH) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf check: cannot read {BENCH_PATH}: {e}");
            return 2;
        }
    };
    let baseline = match committed_totals(&committed) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf check: cannot parse {BENCH_PATH}: {e}");
            return 2;
        }
    };
    let (_, fresh, _) = measure();
    let mut failed = 0;
    println!(
        "{:<12} {:>12} {:>12} {:>8}  (tolerance {tolerance:.2}x)",
        "stage", "baseline ms", "fresh ms", "ratio"
    );
    for stage in STAGES {
        let base = baseline.get(stage);
        let now = fresh.get(stage);
        let ratio = if base > 0.0 { now / base } else { 1.0 };
        let verdict = if ratio > tolerance {
            failed += 1;
            "  << REGRESSION"
        } else {
            ""
        };
        println!("{stage:<12} {base:>12.3} {now:>12.3} {ratio:>7.2}x{verdict}");
    }
    if failed > 0 {
        eprintln!("perf check FAILED: {failed} stage(s) regressed beyond {tolerance:.2}x");
        1
    } else {
        println!("perf check OK: no stage regressed beyond {tolerance:.2}x");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check_mode = false;
    let mut tolerance = 1.5f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--check" => check_mode = true,
            "--tolerance" => {
                let v = it.next().expect("--tolerance needs a value");
                tolerance = v.parse().expect("--tolerance wants a number");
                // A tolerance only means anything when gating; never let
                // it fall through to write mode and silently overwrite
                // the committed baseline.
                check_mode = true;
            }
            other => panic!("unknown argument `{other}` (known: --check, --tolerance X)"),
        }
    }
    if check_mode {
        std::process::exit(check(tolerance));
    }

    let (rows, _, out) = measure();
    std::fs::write(BENCH_PATH, &out).expect("write BENCH_analysis.json");
    println!("{out}");
    println!("wrote {BENCH_PATH} ({} programs)", rows.len());
}
