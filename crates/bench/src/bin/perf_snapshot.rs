//! Wall-clock snapshot of the static-analysis pipeline, stage by stage,
//! over the full corpus plus a synthetic scaling point. Emits
//! `BENCH_analysis.json` so future PRs have a perf trajectory to compare
//! against:
//!
//! ```text
//! cargo run --release -p fence_bench --bin perf_snapshot
//! ```
//!
//! Stages: points-to (function-sharded worklist Andersen), escape
//! closure, acquire detection (Address+Control — the superset detector),
//! cfg (the cache-once `FuncSubstrate` builds: `Cfg` + `Reachability`,
//! once per function, exactly as the batch pipeline amortizes them),
//! ordering generation over the prebuilt substrates, and pruning + fence
//! minimization (x86-TSO). Each stage is run `REPS` times and the
//! minimum is reported, which is the usual low-noise estimator for short
//! deterministic workloads.

use corpus::Params;
use fence_analysis::{EscapeInfo, ModuleAnalysis, PointsTo};
use fence_ir::{FuncSubstrate, Module};
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::minimize::minimize_function;
use fenceplace::orderings::FuncOrderings;
use fenceplace::TargetModel;
use std::time::Instant;

const REPS: usize = 3;

#[derive(Default, Clone, Copy)]
struct StageMs {
    points_to: f64,
    escape: f64,
    acquire: f64,
    cfg: f64,
    orderings: f64,
    minimize: f64,
}

impl StageMs {
    fn total(&self) -> f64 {
        self.points_to + self.escape + self.acquire + self.cfg + self.orderings + self.minimize
    }

    fn add(&mut self, o: &StageMs) {
        self.points_to += o.points_to;
        self.escape += o.escape;
        self.acquire += o.acquire;
        self.cfg += o.cfg;
        self.orderings += o.orderings;
        self.minimize += o.minimize;
    }

    fn json(&self) -> String {
        format!(
            "{{\"points_to\": {:.3}, \"escape\": {:.3}, \"acquire\": {:.3}, \"cfg\": {:.3}, \"orderings\": {:.3}, \"minimize\": {:.3}, \"total\": {:.3}}}",
            self.points_to, self.escape, self.acquire, self.cfg, self.orderings, self.minimize, self.total()
        )
    }
}

fn time_min<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn snapshot(module: &Module) -> StageMs {
    let mut s = StageMs {
        points_to: time_min(|| PointsTo::analyze(module)),
        ..StageMs::default()
    };
    let pt = PointsTo::analyze(module);
    s.escape = time_min(|| EscapeInfo::analyze(module, &pt));
    let an = ModuleAnalysis::run(module);
    s.acquire = time_min(|| {
        for (fid, _) in module.iter_funcs() {
            std::hint::black_box(
                detect_acquires(
                    module,
                    &an.points_to,
                    &an.escape,
                    fid,
                    DetectMode::AddressControl,
                )
                .count(),
            );
        }
    });
    // The cache-once CFG substrate: built exactly once per function per
    // batch by the pipeline; measured as its own stage here.
    s.cfg = time_min(|| {
        for (_, func) in module.iter_funcs() {
            std::hint::black_box(FuncSubstrate::new(func));
        }
    });
    let substrates: Vec<FuncSubstrate> = module
        .iter_funcs()
        .map(|(_, func)| FuncSubstrate::new(func))
        .collect();
    s.orderings = time_min(|| {
        for (fid, _) in module.iter_funcs() {
            std::hint::black_box(
                FuncOrderings::generate(module, &an.escape, fid, &substrates[fid.index()]).counts(),
            );
        }
    });
    // Pruning + minimization against the Control detector on x86-TSO (the
    // pipeline default).
    let sync: Vec<_> = module
        .iter_funcs()
        .map(|(fid, _)| {
            detect_acquires(module, &an.points_to, &an.escape, fid, DetectMode::Control).sync_reads
        })
        .collect();
    let ords: Vec<_> = module
        .iter_funcs()
        .map(|(fid, _)| FuncOrderings::generate(module, &an.escape, fid, &substrates[fid.index()]))
        .collect();
    s.minimize = time_min(|| {
        for (fid, func) in module.iter_funcs() {
            let kept = ords[fid.index()].prune(&sync[fid.index()]);
            let entry = !sync[fid.index()].is_empty();
            std::hint::black_box(minimize_function(
                func,
                fid,
                &kept,
                TargetModel::X86Tso,
                entry,
            ));
        }
    });
    s
}

fn main() {
    let mut rows: Vec<(String, StageMs)> = Vec::new();

    for kernel in corpus::kernels::all() {
        rows.push((format!("kernel:{}", kernel.name), snapshot(&kernel.module)));
    }
    let p = Params::default();
    for prog in corpus::programs(&p) {
        rows.push((format!("corpus:{}", prog.name), snapshot(&prog.module)));
    }
    for n in [4000usize, 16000] {
        let m = corpus::synthetic_scaled(n);
        rows.push((format!("synthetic:{n}"), snapshot(&m)));
    }

    let mut totals = StageMs::default();
    for (_, s) in &rows {
        totals.add(s);
    }

    let mut out = String::from("{\n  \"unit\": \"ms\",\n  \"programs\": [\n");
    for (i, (name, s)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"stages\": {}}}{}\n",
            s.json(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!("  ],\n  \"totals\": {}\n}}\n", totals.json()));

    std::fs::write("BENCH_analysis.json", &out).expect("write BENCH_analysis.json");
    println!("{out}");
    println!("wrote BENCH_analysis.json ({} programs)", rows.len());
}
