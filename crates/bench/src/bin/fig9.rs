//! Regenerates **Figure 9**: static percentage of full fences remaining
//! on x86-TSO after pruning, relative to Pensieve.
//!
//! ```text
//! cargo run -p fence-bench --release --bin fig9
//! ```

use corpus::Params;
use fence_bench::{pct, static_rows, summary};
use fenceplace::Variant;

fn main() {
    let p = Params::default();
    let rows = static_rows(&p);
    println!("Figure 9 — full fences remaining vs Pensieve (x86-TSO)");
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "Program", "Pensieve", "A+C", "Control", "A+C %", "Control %"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
            r.name,
            r.fences_pensieve,
            r.fences_ac,
            r.fences_ctrl,
            pct(r.fence_fraction(Variant::AddressControl)),
            pct(r.fence_fraction(Variant::Control)),
        );
    }
    let g_ac = summary(
        rows.iter()
            .map(|r| r.fence_fraction(Variant::AddressControl)),
    );
    let g_c = summary(rows.iter().map(|r| r.fence_fraction(Variant::Control)));
    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "geomean",
        "",
        "",
        "",
        pct(g_ac),
        pct(g_c)
    );
    println!();
    println!("Paper: ~73% of Pensieve's fences remain under Address+Control,");
    println!("~38% under Control (Canneal best case: 89% reduction).");
}
