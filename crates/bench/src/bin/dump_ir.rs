//! Prints the textual IR of any corpus program or Table II kernel —
//! useful for inspecting what the analyses actually see.
//!
//! ```text
//! cargo run -p fence-bench --bin dump_ir -- Matrix
//! cargo run -p fence-bench --bin dump_ir -- "MCS Lock"
//! cargo run -p fence-bench --bin dump_ir            # lists names
//! ```

use corpus::Params;
use fence_ir::printer::print_module;

fn main() {
    let name = std::env::args().nth(1);
    let p = Params::tiny();
    let programs = corpus::programs(&p);
    let kernels = corpus::kernels::all();

    let Some(name) = name else {
        println!("available programs:");
        for prog in &programs {
            println!("  {}", prog.name);
        }
        println!("available kernels:");
        for k in &kernels {
            println!("  {}", k.name);
        }
        return;
    };

    if let Some(prog) = programs.iter().find(|pr| pr.name == name) {
        println!("{}", print_module(&prog.module));
        return;
    }
    if let Some(k) = kernels.iter().find(|k| k.name == name) {
        println!("{}", print_module(&k.module));
        return;
    }
    eprintln!("unknown program/kernel `{name}` (run without args to list)");
    std::process::exit(1);
}
