//! Regenerates **Figure 7**: static percentage of potentially
//! thread-escaping reads that the analysis marks as acquires, per
//! program, for `Address+Control` and `Control`.
//!
//! ```text
//! cargo run -p fence-bench --release --bin fig7
//! ```

use corpus::Params;
use fence_bench::{pct, static_rows, summary};
use fenceplace::Variant;

fn main() {
    let p = Params::default();
    let rows = static_rows(&p);
    println!("Figure 7 — % of escaping reads marked acquire");
    println!(
        "{:<16} {:>7} {:>9} {:>9}",
        "Program", "eReads", "Addr+Ctl", "Control"
    );
    for r in &rows {
        println!(
            "{:<16} {:>7} {:>9} {:>9}",
            r.name,
            r.escaping_reads,
            pct(r.acquire_fraction(Variant::AddressControl)),
            pct(r.acquire_fraction(Variant::Control)),
        );
    }
    let g_ac = summary(
        rows.iter()
            .map(|r| r.acquire_fraction(Variant::AddressControl)),
    );
    let g_c = summary(rows.iter().map(|r| r.acquire_fraction(Variant::Control)));
    println!(
        "{:<16} {:>7} {:>9} {:>9}",
        "geomean",
        "",
        pct(g_ac),
        pct(g_c)
    );
    println!();
    println!("Paper: Control ≈ 18% geomean (best 7%, worst 33%); Address+Control ≈ 60%.");
}
