//! Ablations over the pipeline's design choices (DESIGN.md §4):
//!
//! 1. **Target memory model** — the paper targets x86-TSO ("our technique
//!    is generally applicable"); this sweeps SC-hardware / x86-TSO / Weak
//!    and reports the full fences each placement needs.
//! 2. **Entry-fence rule** — the paper's modification to Fang et al.
//!    (entry fence only in functions with sync reads) vs. the unmodified
//!    always-place rule, measured as extra static fences.
//!
//! ```text
//! cargo run --release -p fence-bench --bin ablation
//! ```

use corpus::Params;
use fenceplace::minimize::TargetModel;
use fenceplace::{run_pipeline, PipelineConfig, Variant};

fn main() {
    let p = Params::default();
    let programs = corpus::programs(&p);

    println!("Ablation 1 — full fences per hardware target (Control variant)");
    println!(
        "{:<16} {:>10} {:>10} {:>10}",
        "Program", "SC-hw", "x86-TSO", "Weak"
    );
    for prog in &programs {
        let counts: Vec<usize> = [
            TargetModel::ScHardware,
            TargetModel::X86Tso,
            TargetModel::Weak,
        ]
        .into_iter()
        .map(|target| {
            run_pipeline(
                &prog.module,
                &PipelineConfig {
                    variant: Variant::Control,
                    target,
                    parallel: false,
                },
            )
            .report
            .full_fences()
        })
        .collect();
        println!(
            "{:<16} {:>10} {:>10} {:>10}",
            prog.name, counts[0], counts[1], counts[2]
        );
    }
    println!();
    println!("SC hardware needs no runtime fences (directives only); weaker");
    println!("models need strictly more — the placement adapts per target.");
    println!();

    println!("Ablation 2 — the entry-fence modification (x86-TSO, Control)");
    println!(
        "{:<16} {:>12} {:>14} {:>8}",
        "Program", "modified", "always-place", "saved"
    );
    for prog in &programs {
        let placed = run_pipeline(&prog.module, &PipelineConfig::for_variant(Variant::Control));
        let modified = placed.report.full_fences();
        // The unmodified Fang et al. rule places an entry fence in *every*
        // function; the delta is one fence per sync-read-free function.
        let funcs = prog.module.funcs.len();
        let with_entry = placed
            .report
            .funcs
            .iter()
            .filter(|f| f.acquires > 0)
            .count();
        let always = modified + (funcs - with_entry);
        println!(
            "{:<16} {:>12} {:>14} {:>8}",
            prog.name,
            modified,
            always,
            always - modified
        );
    }
}
