//! Regenerates **Figure 10**: simulated execution time under each fence
//! placement, normalized against the expert manual placement.
//!
//! ```text
//! cargo run -p fence-bench --release --bin fig10
//! ```

use corpus::Params;
use fence_bench::{perf_rows, summary};

fn main() {
    let p = Params::default();
    let rows = perf_rows(&p);
    println!("Figure 10 — execution time normalized to manual placement (TSO simulator)");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>9}   {:>18}",
        "Program", "Manual", "Pensieve", "A+C", "Control", "dyn fences P/A/C"
    );
    for r in &rows {
        let n = r.normalized();
        println!(
            "{:<16} {:>8.2} {:>9.2} {:>9.2} {:>9.2}   {:>6}/{:>5}/{:>5}",
            r.name, n[0], n[1], n[2], n[3], r.dyn_fences[1], r.dyn_fences[2], r.dyn_fences[3]
        );
    }
    let g = |i: usize| summary(rows.iter().map(|r| r.normalized()[i]));
    println!(
        "{:<16} {:>8.2} {:>9.2} {:>9.2} {:>9.2}",
        "geomean",
        1.0,
        g(1),
        g(2),
        g(3)
    );
    println!();
    println!("Paper (real i3-2100): Pensieve 1.94x, Address+Control 1.69x, Control 1.44x;");
    println!("best case Matrix: Pensieve 5.84x, Control 2.64x faster than Pensieve.");
}
