//! The seed (pre-optimization) analysis stages, preserved verbatim as
//! the baselines the scaling benches measure against:
//!
//! * **ordering stage** (`ordering_scaling`): per-block DFS all-pairs
//!   reachability (`O(B·E)`), `O(A²)` double loop materializing the
//!   `Vec<(u32, u32)>` pair list, pair-sweep pruning and
//!   interval-per-pair fence minimization;
//! * **acquire stage** (`acquire_scaling`): the seed alias oracle with a
//!   cloned `BitSet` per access and an `O(writers)` linear scan per
//!   `potential_writers` query, plus the seed slicer with its eager
//!   all-locals writer cache and `Vec`-returning writer queries;
//! * **points-to** (`pointsto_scaling`): the seed fixpoint-by-
//!   re-execution Andersen solver — every constraint re-applied every
//!   round with two owned `BitSet` clones per operand visit — measured
//!   against the sharded constraint-graph worklist solver.
//!
//! Nothing in the pipeline uses this module; it exists so the
//! quadratic→near-linear wins stay measurable after the seed code is
//! gone.

use fence_analysis::escape::EscapeInfo;
use fence_analysis::pointsto::{AbsLoc, PointsTo};
use fence_ir::cfg::Cfg;
use fence_ir::util::BitSet;
use fence_ir::FenceKind;
use fence_ir::{BlockId, FuncId, Function, InstId, InstKind, Module, Value};
use fenceplace::acquire::{AcquireInfo, DetectMode};
use fenceplace::minimize::{FencePoint, TargetModel};
use fenceplace::orderings::{Access, AccessKind, OrderKind};

/// Seed reachability: one DFS per block.
pub struct NaiveReachability {
    rows: Vec<BitSet>,
}

impl NaiveReachability {
    /// Computes all-pairs reachability by a DFS from every block.
    pub fn new(cfg: &Cfg) -> Self {
        let n = cfg.num_blocks();
        let mut rows = Vec::with_capacity(n);
        let mut stack = Vec::new();
        for b in 0..n {
            let mut row = BitSet::new(n);
            stack.clear();
            for &s in &cfg.succs[b] {
                if row.insert(s.index()) {
                    stack.push(s);
                }
            }
            while let Some(cur) = stack.pop() {
                for &s in &cfg.succs[cur.index()] {
                    if row.insert(s.index()) {
                        stack.push(s);
                    }
                }
            }
            rows.push(row);
        }
        NaiveReachability { rows }
    }

    fn reaches(&self, from: BlockId, to: BlockId) -> bool {
        self.rows[from.index()].contains(to.index())
    }

    fn in_cycle(&self, b: BlockId) -> bool {
        self.reaches(b, b)
    }
}

/// Seed orderings: the explicit pair list.
pub struct NaiveOrderings {
    /// All escaping access occurrences, block-sequential.
    pub accesses: Vec<Access>,
    /// The materialized `O(A²)` pair list.
    pub pairs: Vec<(u32, u32)>,
}

impl NaiveOrderings {
    /// The seed generation algorithm, verbatim.
    #[allow(clippy::if_same_then_else)] // seed control flow, kept verbatim
    pub fn generate(module: &Module, escape: &EscapeInfo, fid: FuncId) -> Self {
        let func = module.func(fid);
        let cfg = Cfg::new(func);
        let reach = NaiveReachability::new(&cfg);

        let mut accesses = Vec::new();
        for (bid, block) in func.iter_blocks() {
            for (index, &iid) in block.insts.iter().enumerate() {
                let kind = &func.inst(iid).kind;
                if kind.is_mem_access() {
                    if !escape.is_escaping(fid, iid) {
                        continue;
                    }
                    let atomic = kind.is_mem_read() && kind.is_mem_write();
                    if kind.is_mem_read() {
                        accesses.push(Access {
                            inst: iid,
                            kind: AccessKind::Read,
                            atomic,
                            block: bid,
                            index,
                        });
                    }
                    if kind.is_mem_write() {
                        accesses.push(Access {
                            inst: iid,
                            kind: AccessKind::Write,
                            atomic,
                            block: bid,
                            index,
                        });
                    }
                } else if let InstKind::CallIntrinsic { intr, .. } = kind {
                    if intr.is_sync_boundary() {
                        for k in [AccessKind::Read, AccessKind::Write] {
                            accesses.push(Access {
                                inst: iid,
                                kind: k,
                                atomic: true,
                                block: bid,
                                index,
                            });
                        }
                    }
                }
            }
        }

        let mut pairs = Vec::new();
        for (i, a) in accesses.iter().enumerate() {
            for (j, b) in accesses.iter().enumerate() {
                if i == j {
                    if reach.in_cycle(a.block) {
                        pairs.push((i as u32, j as u32));
                    }
                    continue;
                }
                if a.inst == b.inst && a.index == b.index {
                    if a.kind == AccessKind::Read && b.kind == AccessKind::Write {
                        pairs.push((i as u32, j as u32));
                    } else if reach.in_cycle(a.block) {
                        pairs.push((i as u32, j as u32));
                    }
                    continue;
                }
                let ordered = if a.block == b.block {
                    a.index < b.index || reach.in_cycle(a.block)
                } else {
                    reach.reaches(a.block, b.block)
                };
                if ordered {
                    pairs.push((i as u32, j as u32));
                }
            }
        }

        NaiveOrderings { accesses, pairs }
    }

    fn kind(&self, p: (u32, u32)) -> OrderKind {
        let of = |a: AccessKind, b: AccessKind| match (a, b) {
            (AccessKind::Read, AccessKind::Read) => OrderKind::RR,
            (AccessKind::Read, AccessKind::Write) => OrderKind::RW,
            (AccessKind::Write, AccessKind::Read) => OrderKind::WR,
            (AccessKind::Write, AccessKind::Write) => OrderKind::WW,
        };
        of(
            self.accesses[p.0 as usize].kind,
            self.accesses[p.1 as usize].kind,
        )
    }

    /// Seed pruning: a full sweep of the pair list.
    pub fn prune(&self, sync_reads: &BitSet) -> Vec<(u32, u32)> {
        self.pairs
            .iter()
            .copied()
            .filter(|&(a, b)| {
                let fa = &self.accesses[a as usize];
                let fb = &self.accesses[b as usize];
                match self.kind((a, b)) {
                    OrderKind::RR => sync_reads.contains(fa.inst.index()),
                    OrderKind::WR => sync_reads.contains(fb.inst.index()),
                    OrderKind::RW | OrderKind::WW => true,
                }
            })
            .collect()
    }

    /// Seed per-kind pair counts: a sweep.
    pub fn counts_of(&self, pairs: &[(u32, u32)]) -> [usize; 4] {
        let mut c = [0usize; 4];
        for &p in pairs {
            c[self.kind(p).idx()] += 1;
        }
        c
    }

    /// Seed fence minimization: one interval per kept pair.
    pub fn minimize(
        &self,
        func: &fence_ir::Function,
        fid: FuncId,
        kept: &[(u32, u32)],
        target: TargetModel,
        entry_fence: bool,
    ) -> Vec<FencePoint> {
        struct Interval {
            block: u32,
            lo: u32,
            hi: u32,
            full: bool,
        }
        let mut intervals = Vec::with_capacity(kept.len());
        for &(ai, bi) in kept {
            let a = &self.accesses[ai as usize];
            let b = &self.accesses[bi as usize];
            if a.atomic || b.atomic {
                continue;
            }
            let kind = self.kind((ai, bi));
            let full = target.needs_full(kind);
            let term = func.block(a.block).insts.len() - 1;
            let (lo, hi) = if a.block == b.block && a.index < b.index {
                (a.index + 1, b.index)
            } else {
                (a.index + 1, term)
            };
            intervals.push(Interval {
                block: a.block.index() as u32,
                lo: lo as u32,
                hi: hi as u32,
                full,
            });
        }
        let mut by_block: Vec<Vec<Interval>> = (0..func.num_blocks()).map(|_| Vec::new()).collect();
        for iv in intervals {
            by_block[iv.block as usize].push(iv);
        }
        let mut points = Vec::new();
        if entry_fence {
            let kind = if target == TargetModel::ScHardware {
                FenceKind::Compiler
            } else {
                FenceKind::Full
            };
            points.push(FencePoint {
                func: fid,
                block: func.entry,
                gap: 0,
                kind,
            });
        }
        for (b, mut ivs) in by_block.into_iter().enumerate() {
            if ivs.is_empty() {
                continue;
            }
            ivs.sort_by_key(|iv| iv.hi);
            let mut full_pts: Vec<u32> = Vec::new();
            for iv in ivs.iter().filter(|iv| iv.full) {
                if full_pts.last().is_none_or(|&p| p < iv.lo) {
                    full_pts.push(iv.hi);
                }
            }
            let mut dir_pts: Vec<u32> = Vec::new();
            for iv in ivs.iter().filter(|iv| !iv.full) {
                let by_full = full_pts.iter().any(|&p| p >= iv.lo && p <= iv.hi);
                let by_dir = dir_pts.last().is_some_and(|&p| p >= iv.lo);
                if !by_full && !by_dir {
                    dir_pts.push(iv.hi);
                }
            }
            for p in full_pts {
                points.push(FencePoint {
                    func: fid,
                    block: BlockId::new(b),
                    gap: p as usize,
                    kind: FenceKind::Full,
                });
            }
            for p in dir_pts {
                points.push(FencePoint {
                    func: fid,
                    block: BlockId::new(b),
                    gap: p as usize,
                    kind: FenceKind::Compiler,
                });
            }
        }
        points
    }
}

/// Runs the whole seed ordering stage (generate → prune → counts →
/// minimize) over every function; returns a checksum so callers can
/// compare against the optimized stage.
pub fn naive_ordering_stage(
    module: &Module,
    escape: &EscapeInfo,
    sync_reads: &[BitSet],
    target: TargetModel,
) -> (usize, Vec<FencePoint>) {
    let mut total_kept = 0usize;
    let mut points = Vec::new();
    for (fid, func) in module.iter_funcs() {
        let ords = NaiveOrderings::generate(module, escape, fid);
        let kept = ords.prune(&sync_reads[fid.index()]);
        total_kept += ords.counts_of(&kept).iter().sum::<usize>();
        let entry = !sync_reads[fid.index()].is_empty();
        points.extend(ords.minimize(func, fid, &kept, target, entry));
    }
    (total_kept, points)
}

/// The seed per-function alias oracle, verbatim: one owned `BitSet`
/// clone per access (`to_bitset`), and `potential_writers` as a linear
/// filter over *all* writers of the function.
pub struct NaiveAliasOracle {
    unknown: usize,
    access_locs: Vec<Option<BitSet>>,
    writers: Vec<InstId>,
}

impl NaiveAliasOracle {
    /// Builds the seed oracle for `func_id`.
    pub fn new(module: &Module, pt: &PointsTo, func_id: FuncId) -> Self {
        let func = module.func(func_id);
        let mut access_locs = vec![None; func.num_insts()];
        let mut writers = Vec::new();
        for (iid, inst) in func.iter_insts() {
            if let Some(addr) = inst.kind.mem_addr() {
                access_locs[iid.index()] =
                    Some(pt.addr_locs(func_id, addr).to_bitset(pt.num_locs()));
                if inst.kind.is_mem_write() {
                    writers.push(iid);
                }
            } else if let InstKind::CallIntrinsic { intr, args } = &inst.kind {
                if intr.is_sync_boundary() {
                    if let Some(&addr) = args.first() {
                        access_locs[iid.index()] =
                            Some(pt.addr_locs(func_id, addr).to_bitset(pt.num_locs()));
                        writers.push(iid);
                    }
                }
            }
        }
        NaiveAliasOracle {
            unknown: pt.unknown_idx(),
            access_locs,
            writers,
        }
    }

    fn may_alias(&self, a: InstId, b: InstId) -> bool {
        let (sa, sb) = match (
            self.access_locs[a.index()].as_ref(),
            self.access_locs[b.index()].as_ref(),
        ) {
            (Some(x), Some(y)) => (x, y),
            _ => return false,
        };
        sa.contains(self.unknown) || sb.contains(self.unknown) || sa.intersects(sb)
    }

    /// The seed `O(writers)` linear filter.
    pub fn potential_writers(&self, read: InstId) -> Vec<InstId> {
        self.writers
            .iter()
            .copied()
            .filter(|&w| w != read && self.may_alias(read, w))
            .collect()
    }
}

/// The seed backwards slicer: eager writer cache for *every* local slot
/// and a `Vec` allocation per memory-read slice step.
struct NaiveSlicer<'a> {
    func: &'a Function,
    oracle: &'a NaiveAliasOracle,
    escaping: &'a BitSet,
    seen: BitSet,
    sync_reads: BitSet,
    local_writers: Vec<Vec<InstId>>,
}

impl<'a> NaiveSlicer<'a> {
    fn new(func: &'a Function, oracle: &'a NaiveAliasOracle, escaping: &'a BitSet) -> Self {
        let local_writers = (0..func.locals.len())
            .map(|l| func.writers_of_local(fence_ir::LocalId::new(l)))
            .collect();
        NaiveSlicer {
            func,
            oracle,
            escaping,
            seen: BitSet::new(func.num_insts()),
            sync_reads: BitSet::new(func.num_insts()),
            local_writers,
        }
    }

    fn push_def(work_list: &mut Vec<InstId>, v: Value) {
        if let Value::Inst(i) = v {
            work_list.push(i);
        }
    }

    fn slice(&mut self, mut work_list: Vec<InstId>) {
        while let Some(inst) = work_list.pop() {
            if !self.seen.insert(inst.index()) {
                continue;
            }
            let kind = &self.func.inst(inst).kind;
            if kind.is_mem_read() {
                if self.escaping.contains(inst.index()) {
                    self.sync_reads.insert(inst.index());
                }
                for w in self.oracle.potential_writers(inst) {
                    work_list.push(w);
                }
                if kind.is_mem_write() {
                    kind.for_each_operand(|v| Self::push_def(&mut work_list, v));
                }
            } else {
                match kind {
                    InstKind::ReadLocal { local } => {
                        work_list.extend_from_slice(&self.local_writers[local.index()]);
                    }
                    _ => {
                        kind.for_each_operand(|v| Self::push_def(&mut work_list, v));
                    }
                }
            }
        }
    }
}

/// The seed acquire detector: fresh oracle, linear writer scans, eager
/// slicer caches — the `acquire_scaling` baseline.
pub fn naive_detect_acquires(
    module: &Module,
    pt: &PointsTo,
    escape: &EscapeInfo,
    fid: FuncId,
    mode: DetectMode,
) -> AcquireInfo {
    let func = module.func(fid);
    let oracle = NaiveAliasOracle::new(module, pt, fid);
    let escaping = escape.escaping_set(fid);

    let mut control_slicer = NaiveSlicer::new(func, &oracle, escaping);
    let mut roots = Vec::new();
    for (_, inst) in func.iter_insts() {
        if let InstKind::CondBr { cond, .. } = inst.kind {
            NaiveSlicer::push_def(&mut roots, cond);
        }
    }
    control_slicer.slice(roots);
    let control = control_slicer.sync_reads.clone();

    let address = if mode == DetectMode::AddressControl {
        let mut addr_slicer = NaiveSlicer::new(func, &oracle, escaping);
        let mut roots = Vec::new();
        for (_, inst) in func.iter_insts() {
            match &inst.kind {
                InstKind::Gep { index, .. } => NaiveSlicer::push_def(&mut roots, *index),
                k if k.is_mem_access() => {
                    if let Some(addr) = k.mem_addr() {
                        NaiveSlicer::push_def(&mut roots, addr);
                    }
                }
                _ => {}
            }
        }
        addr_slicer.slice(roots);
        addr_slicer.sync_reads
    } else {
        BitSet::new(func.num_insts())
    };

    let mut sync_reads = control.clone();
    sync_reads.union_with(&address);
    AcquireInfo {
        control,
        address,
        sync_reads,
    }
}

/// The optimized ordering stage over every function (same work, new
/// algorithms) for apples-to-apples comparison.
pub fn optimized_ordering_stage(
    module: &Module,
    escape: &EscapeInfo,
    sync_reads: &[BitSet],
    target: TargetModel,
) -> (usize, Vec<FencePoint>) {
    use fenceplace::minimize::minimize_function;
    use fenceplace::orderings::FuncOrderings;
    let mut total_kept = 0usize;
    let mut points = Vec::new();
    for (fid, func) in module.iter_funcs() {
        let substrate = fence_ir::FuncSubstrate::new(func);
        let ords = FuncOrderings::generate(module, escape, fid, &substrate);
        let kept = ords.prune(&sync_reads[fid.index()]);
        // One aggregate computation serves counting and minimization,
        // mirroring the pipeline's per-(function, variant) cache.
        let aggs = kept.aggregates();
        total_kept += kept.counts_with(&aggs).iter().sum::<usize>();
        let entry = !sync_reads[fid.index()].is_empty();
        points.extend(minimize_function(func, fid, &kept, &aggs, target, entry));
    }
    (total_kept, points)
}

/// The seed points-to solver's result: one owned set per value, argument,
/// local and abstract location.
pub struct SeedPointsTo {
    /// Per function, per instruction result.
    pub val: Vec<Vec<BitSet>>,
    /// Per function, per argument.
    pub arg: Vec<Vec<BitSet>>,
    /// Per abstract location (same dense indexing as [`PointsTo`]).
    pub loc: Vec<BitSet>,
}

/// The seed Andersen solver, verbatim: apply every instruction's
/// constraints in program order, repeat until a whole round changes
/// nothing. `O(rounds · insts · locs/64)` with owned `BitSet` clones on
/// every operand visit — the baseline `pointsto_scaling` measures the
/// sharded constraint-graph solver against.
#[allow(clippy::needless_range_loop)] // seed control flow, kept verbatim
pub fn seed_points_to(module: &Module) -> SeedPointsTo {
    let mut locs: Vec<AbsLoc> = module
        .iter_globals()
        .map(|(g, _)| AbsLoc::Global(g))
        .collect();
    for (fid, func) in module.iter_funcs() {
        for (iid, inst) in func.iter_insts() {
            if matches!(inst.kind, InstKind::Alloc { .. }) {
                locs.push(AbsLoc::Alloc(fid, iid));
            }
        }
    }
    let unknown = locs.len();
    locs.push(AbsLoc::Unknown);
    let n = locs.len();
    // Prebuilt alloc-site map, exactly as the seed solver had it — an
    // O(locs) scan here would inflate the baseline on alloc-heavy
    // modules and overstate the sharded solver's speedup.
    let alloc_idx: fence_ir::util::FastMap<(u32, u32), usize> = locs
        .iter()
        .enumerate()
        .filter_map(|(i, l)| match l {
            AbsLoc::Alloc(f, inst) => Some(((f.index() as u32, inst.index() as u32), i)),
            _ => None,
        })
        .collect();
    let alloc_of = |f: FuncId, i: InstId| alloc_idx[&(f.index() as u32, i.index() as u32)];

    let mut val: Vec<Vec<BitSet>> = module
        .funcs
        .iter()
        .map(|f| vec![BitSet::new(n); f.num_insts()])
        .collect();
    let mut arg: Vec<Vec<BitSet>> = module
        .funcs
        .iter()
        .map(|f| vec![BitSet::new(n); f.num_params as usize])
        .collect();
    let mut local: Vec<Vec<BitSet>> = module
        .funcs
        .iter()
        .map(|f| vec![BitSet::new(n); f.locals.len()])
        .collect();
    let mut loc = vec![BitSet::new(n); n];
    let mut ret = vec![BitSet::new(n); module.funcs.len()];
    loc[unknown].insert(unknown);

    let value_set = |val: &[Vec<BitSet>], arg: &[Vec<BitSet>], f: FuncId, v: Value| match v {
        Value::Const(_) => BitSet::new(n),
        Value::Global(g) => {
            let mut s = BitSet::new(n);
            s.insert(g.index());
            s
        }
        Value::Arg(a) => arg[f.index()][a as usize].clone(),
        Value::Inst(i) => val[f.index()][i.index()].clone(),
    };
    let addr_locs = |val: &[Vec<BitSet>], arg: &[Vec<BitSet>], f: FuncId, a: Value| {
        let mut s = value_set(val, arg, f, a);
        if s.is_empty() {
            s.insert(unknown);
        }
        s
    };

    let mut changed = true;
    while changed {
        changed = false;
        for (fid, func) in module.iter_funcs() {
            let fi = fid.index();
            for (iid, inst) in func.iter_insts() {
                match &inst.kind {
                    InstKind::Alloc { .. } => {
                        changed |= val[fi][iid.index()].insert(alloc_of(fid, iid));
                    }
                    InstKind::Gep { base, .. } => {
                        let s = value_set(&val, &arg, fid, *base);
                        changed |= val[fi][iid.index()].union_with(&s);
                    }
                    InstKind::Bin { lhs, rhs, .. } => {
                        for v in [*lhs, *rhs] {
                            let s = value_set(&val, &arg, fid, v);
                            changed |= val[fi][iid.index()].union_with(&s);
                        }
                    }
                    InstKind::Select {
                        then_val, else_val, ..
                    } => {
                        for v in [*then_val, *else_val] {
                            let s = value_set(&val, &arg, fid, v);
                            changed |= val[fi][iid.index()].union_with(&s);
                        }
                    }
                    InstKind::Load { addr } => {
                        let als = addr_locs(&val, &arg, fid, *addr);
                        let mut acc = BitSet::new(n);
                        for l in als.iter() {
                            acc.union_with(&loc[l]);
                        }
                        changed |= val[fi][iid.index()].union_with(&acc);
                    }
                    InstKind::Store { addr, val: v } => {
                        let s = value_set(&val, &arg, fid, *v);
                        let als = addr_locs(&val, &arg, fid, *addr);
                        for l in als.iter() {
                            changed |= loc[l].union_with(&s);
                        }
                    }
                    InstKind::AtomicRmw { addr, val: v, .. }
                    | InstKind::AtomicCas { addr, new: v, .. } => {
                        let als = addr_locs(&val, &arg, fid, *addr);
                        let mut acc = BitSet::new(n);
                        for l in als.iter() {
                            acc.union_with(&loc[l]);
                        }
                        changed |= val[fi][iid.index()].union_with(&acc);
                        let s = value_set(&val, &arg, fid, *v);
                        for l in als.iter() {
                            changed |= loc[l].union_with(&s);
                        }
                    }
                    InstKind::ReadLocal { local: lo } => {
                        let s = local[fi][lo.index()].clone();
                        changed |= val[fi][iid.index()].union_with(&s);
                    }
                    InstKind::WriteLocal { local: lo, val: v } => {
                        let s = value_set(&val, &arg, fid, *v);
                        changed |= local[fi][lo.index()].union_with(&s);
                    }
                    InstKind::Call { callee, args } => {
                        let cf = callee.index();
                        for (k, a) in args.iter().enumerate() {
                            if k < module.funcs[cf].num_params as usize {
                                let s = value_set(&val, &arg, fid, *a);
                                changed |= arg[cf][k].union_with(&s);
                            }
                        }
                        let r = ret[cf].clone();
                        changed |= val[fi][iid.index()].union_with(&r);
                    }
                    InstKind::Ret { val: Some(v) } => {
                        let s = value_set(&val, &arg, fid, *v);
                        changed |= ret[fi].union_with(&s);
                    }
                    _ => {}
                }
            }
        }
    }
    SeedPointsTo { val, arg, loc }
}
