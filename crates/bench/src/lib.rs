//! # fence-bench
//!
//! Shared harness code that regenerates the paper's evaluation — one
//! function per table/figure, used by both the `fig*`/`table2` binaries
//! and the criterion benches. See `EXPERIMENTS.md` at the repository
//! root for paper-vs-measured numbers.

pub mod naive;

use corpus::{Params, Program};
use fenceplace::report::geomean;
use fenceplace::{run_fleet, run_pipeline, FleetJob, PipelineConfig, Variant};
use memsim::{SimConfig, Simulator};

/// One row of Table II.
pub struct Table2Row {
    /// Kernel name.
    pub name: &'static str,
    /// Source citation.
    pub citation: &'static str,
    /// Any address-signature acquires found.
    pub addr: bool,
    /// Any control-signature acquires found.
    pub ctrl: bool,
    /// Any *pure* address acquires found.
    pub pure_addr: bool,
    /// Expected (paper) values.
    pub expect: (bool, bool, bool),
}

/// Runs acquire detection over the nine kernels (Table II) — one fleet
/// over all nine modules, so the per-kernel analyses share the pool and
/// the row interner instead of running in a hand-rolled loop.
pub fn table2() -> Vec<Table2Row> {
    let kernels = corpus::kernels::all();
    let configs = vec![PipelineConfig::for_variant(Variant::AddressControl)];
    let jobs: Vec<FleetJob<'_>> = kernels
        .iter()
        .map(|k| FleetJob::new(k.name, &k.module, configs.clone()))
        .collect();
    let fleet = run_fleet(&jobs);
    kernels
        .iter()
        .zip(&fleet)
        .map(|(k, fr)| {
            let report = &fr.results[0].report;
            let addr: usize = report.funcs.iter().map(|f| f.address_acquires).sum();
            let ctrl: usize = report.funcs.iter().map(|f| f.control_acquires).sum();
            let pure: usize = report.funcs.iter().map(|f| f.pure_address_acquires).sum();
            Table2Row {
                name: k.name,
                citation: k.citation,
                addr: addr > 0,
                ctrl: ctrl > 0,
                pure_addr: pure > 0,
                expect: (k.expect_addr, k.expect_ctrl, k.expect_pure_addr),
            }
        })
        .collect()
}

/// Per-program static analysis results for Figures 7–9.
pub struct StaticRow {
    /// Program name.
    pub name: &'static str,
    /// Escaping reads (the Figure 7 denominator).
    pub escaping_reads: usize,
    /// Acquires under Address+Control.
    pub acquires_ac: usize,
    /// Acquires under Control.
    pub acquires_ctrl: usize,
    /// Orderings by kind, per variant: `[rr, rw, wr, ww]`.
    pub ords_pensieve: [usize; 4],
    /// Orderings kept under Address+Control.
    pub ords_ac: [usize; 4],
    /// Orderings kept under Control.
    pub ords_ctrl: [usize; 4],
    /// Full fences placed, per variant.
    pub fences_pensieve: usize,
    /// Full fences under Address+Control.
    pub fences_ac: usize,
    /// Full fences under Control.
    pub fences_ctrl: usize,
    /// Hand-placed fences of the expert baseline.
    pub fences_manual: usize,
}

impl StaticRow {
    /// Figure 7 metric: fraction of escaping reads marked acquire.
    pub fn acquire_fraction(&self, variant: Variant) -> f64 {
        let acq = match variant {
            Variant::Control => self.acquires_ctrl,
            Variant::AddressControl => self.acquires_ac,
            Variant::Pensieve => self.escaping_reads,
            Variant::Manual => 0,
        };
        if self.escaping_reads == 0 {
            0.0
        } else {
            acq as f64 / self.escaping_reads as f64
        }
    }

    /// Figure 8 metric: orderings kept as a fraction of Pensieve's.
    pub fn ordering_fraction(&self, variant: Variant) -> f64 {
        let total: usize = self.ords_pensieve.iter().sum();
        let kept: usize = match variant {
            Variant::Control => self.ords_ctrl.iter().sum(),
            Variant::AddressControl => self.ords_ac.iter().sum(),
            Variant::Pensieve => total,
            Variant::Manual => 0,
        };
        if total == 0 {
            0.0
        } else {
            kept as f64 / total as f64
        }
    }

    /// Figure 9 metric: full fences as a fraction of Pensieve's.
    pub fn fence_fraction(&self, variant: Variant) -> f64 {
        let f = match variant {
            Variant::Control => self.fences_ctrl,
            Variant::AddressControl => self.fences_ac,
            Variant::Pensieve => self.fences_pensieve,
            Variant::Manual => self.fences_manual,
        };
        if self.fences_pensieve == 0 {
            0.0
        } else {
            f as f64 / self.fences_pensieve as f64
        }
    }
}

/// Runs the static pipeline (Figures 7, 8, 9) over the whole corpus as
/// **one fleet**: all seventeen programs' per-function work units share
/// the persistent pool and the fleet-wide row interner, instead of the
/// old per-program batch loop with a stage barrier at every program
/// boundary. Results are bit-identical to the loop (the fleet contract).
pub fn static_rows(p: &Params) -> Vec<StaticRow> {
    let progs = corpus::programs(p);
    let configs = vec![
        PipelineConfig::for_variant(Variant::Pensieve),
        PipelineConfig::for_variant(Variant::AddressControl),
        PipelineConfig::for_variant(Variant::Control),
    ];
    let jobs: Vec<FleetJob<'_>> = progs
        .iter()
        .map(|prog| FleetJob::new(prog.name, &prog.module, configs.clone()))
        .collect();
    let fleet = run_fleet(&jobs);
    progs
        .iter()
        .zip(fleet)
        .map(|(prog, fr)| {
            let mut results = fr.results.into_iter();
            let pens = results.next().expect("pensieve result");
            let ac = results.next().expect("address+control result");
            let ctrl = results.next().expect("control result");
            StaticRow {
                name: prog.name,
                escaping_reads: pens.report.escaping_reads(),
                acquires_ac: ac.report.acquires(),
                acquires_ctrl: ctrl.report.acquires(),
                ords_pensieve: pens.report.orderings_kept(),
                ords_ac: ac.report.orderings_kept(),
                ords_ctrl: ctrl.report.orderings_kept(),
                fences_pensieve: pens.report.full_fences(),
                fences_ac: ac.report.full_fences(),
                fences_ctrl: ctrl.report.full_fences(),
                fences_manual: prog.manual_full_fences,
            }
        })
        .collect()
}

/// One Figure 10 row: simulated cycles per placement, normalized to the
/// expert manual baseline.
pub struct PerfRow {
    /// Program name.
    pub name: &'static str,
    /// Simulated cycles: `[manual, pensieve, address+control, control]`.
    pub cycles: [u64; 4],
    /// Dynamic full fences executed, same order.
    pub dyn_fences: [u64; 4],
}

impl PerfRow {
    /// Execution time normalized against manual placement.
    pub fn normalized(&self) -> [f64; 4] {
        let base = self.cycles[0].max(1) as f64;
        [
            1.0,
            self.cycles[1] as f64 / base,
            self.cycles[2] as f64 / base,
            self.cycles[3] as f64 / base,
        ]
    }
}

/// Runs one program under one placement variant on the TSO simulator.
pub fn simulate_variant(prog: &Program, variant: Variant) -> memsim::SimResult {
    let module = match variant {
        Variant::Manual => prog.manual_module.clone(),
        v => run_pipeline(&prog.module, &PipelineConfig::for_variant(v)).module,
    };
    let sim = Simulator::with_config(&module, SimConfig::default());
    let result = sim
        .run(&prog.threads)
        .unwrap_or_else(|e| panic!("{} under {variant:?}: {e}", prog.name));
    if let Some(check) = prog.check {
        check(&result, &module, &prog.params)
            .unwrap_or_else(|e| panic!("{} under {variant:?}: {e}", prog.name));
    }
    result
}

/// Runs the performance experiment (Figure 10) over the whole corpus.
pub fn perf_rows(p: &Params) -> Vec<PerfRow> {
    corpus::programs(p)
        .iter()
        .map(|prog| {
            let mut cycles = [0u64; 4];
            let mut dyn_fences = [0u64; 4];
            for (i, v) in [
                Variant::Manual,
                Variant::Pensieve,
                Variant::AddressControl,
                Variant::Control,
            ]
            .into_iter()
            .enumerate()
            {
                let r = simulate_variant(prog, v);
                cycles[i] = r.cycles;
                dyn_fences[i] = r.full_fences;
            }
            PerfRow {
                name: prog.name,
                cycles,
                dyn_fences,
            }
        })
        .collect()
}

/// Geometric mean over per-row values.
pub fn summary(values: impl IntoIterator<Item = f64>) -> f64 {
    geomean(values)
}

/// Renders a percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        for row in table2() {
            assert_eq!(
                (row.addr, row.ctrl, row.pure_addr),
                row.expect,
                "{} classification",
                row.name
            );
        }
    }

    #[test]
    fn static_pipeline_shape() {
        let p = Params::tiny();
        let rows = static_rows(&p);
        assert_eq!(rows.len(), 17);
        for r in &rows {
            assert!(
                r.acquires_ctrl <= r.acquires_ac,
                "{}: Control ⊆ A+C",
                r.name
            );
            assert!(
                r.acquires_ac <= r.escaping_reads,
                "{}: A+C ⊆ escaping",
                r.name
            );
            assert!(
                r.fences_ctrl <= r.fences_ac && r.fences_ac <= r.fences_pensieve,
                "{}: fence monotonicity ({} ≤ {} ≤ {})",
                r.name,
                r.fences_ctrl,
                r.fences_ac,
                r.fences_pensieve
            );
        }
        // Average reductions go the right direction.
        let ctrl_frac = summary(rows.iter().map(|r| r.ordering_fraction(Variant::Control)));
        let ac_frac = summary(
            rows.iter()
                .map(|r| r.ordering_fraction(Variant::AddressControl)),
        );
        assert!(ctrl_frac < ac_frac && ac_frac < 1.0);
    }
}
