//! Criterion benches over the Figure 10 experiment: simulated execution
//! of representative corpus programs under each fence placement. Wall
//! time here tracks simulated work, so relative criterion numbers mirror
//! the simulated-cycle ratios the `fig10` binary reports.

use corpus::Params;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_bench::simulate_variant;
use fenceplace::Variant;

fn bench_placements(c: &mut Criterion) {
    let p = Params {
        threads: 4,
        scale: 8,
    };
    let programs = corpus::programs(&p);
    let mut group = c.benchmark_group("fig10_sim");
    for name in ["Matrix", "Water-NSquared", "Ocean-con", "Canneal"] {
        let prog = programs
            .iter()
            .find(|pr| pr.name == name)
            .expect("program exists");
        for variant in [
            Variant::Manual,
            Variant::Pensieve,
            Variant::AddressControl,
            Variant::Control,
        ] {
            group.bench_with_input(BenchmarkId::new(name, variant.name()), &variant, |b, &v| {
                b.iter(|| simulate_variant(prog, v).cycles)
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_placements
}
criterion_main!(benches);
