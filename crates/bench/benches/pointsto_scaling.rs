//! Scaling bench: whole-module points-to on `corpus::synthetic_scaled(n)`,
//! seed algorithm vs. the function-sharded constraint-graph solver.
//!
//! The seed stage re-applies every constraint each round with two owned
//! `BitSet` clones per operand visit; the sharded stage registers the
//! constraint graph once (CSR + flat delta matrix), replays the legacy
//! initial pass sequentially, and drains per-function worklists around
//! the shared globals frontier. Both sequential and pool-parallel shard
//! scheduling are timed (on a single-core host the two coincide).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_analysis::pointsto::PointsTo;
use fence_bench::naive::seed_points_to;
use fence_ir::Value;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pointsto_scaling");
    for n in [250usize, 1000, 4000, 16000] {
        let module = corpus::synthetic_scaled(n);

        // The three solvers must agree before we time anything.
        let seed = seed_points_to(&module);
        for parallel in [false, true] {
            let fast = PointsTo::analyze_on(&module, parallel);
            for (fid, func) in module.iter_funcs() {
                for (iid, _) in func.iter_insts() {
                    let got: Vec<usize> = fast.value_set(fid, Value::Inst(iid)).iter().collect();
                    let want: Vec<usize> = seed.val[fid.index()][iid.index()].iter().collect();
                    assert_eq!(
                        got,
                        want,
                        "{}/%{}: sets diverge at n={n} (parallel={parallel})",
                        func.name,
                        iid.index()
                    );
                }
            }
            for l in 0..fast.num_locs() {
                let got: Vec<usize> = fast.loc_pts(l).iter().collect();
                let want: Vec<usize> = seed.loc[l].iter().collect();
                assert_eq!(got, want, "loc {l}: pointees diverge at n={n}");
            }
        }

        group.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| seed_points_to(&module).loc.len())
        });
        group.bench_with_input(BenchmarkId::new("sharded", n), &n, |b, _| {
            b.iter(|| PointsTo::analyze(&module).num_locs())
        });
        group.bench_with_input(BenchmarkId::new("sharded-par", n), &n, |b, _| {
            b.iter(|| PointsTo::analyze_on(&module, true).num_locs())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
