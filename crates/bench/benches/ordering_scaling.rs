//! Scaling bench: the ordering stage (generation → pruning → counting →
//! fence minimization) on `corpus::synthetic_scaled(n)`, seed algorithm
//! vs. the block-aggregated one.
//!
//! The seed stage is `O(A²)` in per-function escaping accesses (pair
//! list) on top of `O(B·E)` reachability; the optimized stage is linear
//! in accesses + reachable block pairs on SCC-condensed reachability.
//! The gap must widen with `n` — the acceptance bar for this PR is ≥5×
//! at the largest size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_analysis::ModuleAnalysis;
use fence_bench::naive::{naive_ordering_stage, optimized_ordering_stage};
use fence_ir::util::BitSet;
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::TargetModel;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ordering_scaling");
    for n in [250usize, 1000, 4000, 16000] {
        let module = corpus::synthetic_scaled(n);
        let an = ModuleAnalysis::run(&module);
        let sync: Vec<BitSet> = module
            .iter_funcs()
            .map(|(fid, _)| {
                detect_acquires(&module, &an.points_to, &an.escape, fid, DetectMode::Control)
                    .sync_reads
            })
            .collect();

        // The two stages must agree before we time anything.
        let naive = naive_ordering_stage(&module, &an.escape, &sync, TargetModel::X86Tso);
        let fast = optimized_ordering_stage(&module, &an.escape, &sync, TargetModel::X86Tso);
        assert_eq!(naive.0, fast.0, "kept-pair totals diverge at n={n}");
        assert_eq!(naive.1, fast.1, "fence points diverge at n={n}");

        group.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| naive_ordering_stage(&module, &an.escape, &sync, TargetModel::X86Tso).0)
        });
        group.bench_with_input(BenchmarkId::new("aggregated", n), &n, |b, _| {
            b.iter(|| optimized_ordering_stage(&module, &an.escape, &sync, TargetModel::X86Tso).0)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
