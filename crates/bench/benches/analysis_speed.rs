//! Criterion benches for the static side: points-to + escape analysis,
//! acquire detection, and the full pipeline over the whole corpus
//! (sequential vs. the persistent-thread-pool per-function driver, and
//! per-config `run_pipeline` sweeps vs. one `run_pipeline_batch`).

use corpus::Params;
use criterion::{criterion_group, criterion_main, Criterion};
use fence_analysis::ModuleAnalysis;
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::{run_pipeline, run_pipeline_batch, PipelineConfig, TargetModel, Variant};

fn bench_analysis(c: &mut Criterion) {
    let p = Params::default();
    let programs = corpus::programs(&p);

    c.bench_function("points_to_escape_corpus", |b| {
        b.iter(|| {
            for prog in &programs {
                let an = ModuleAnalysis::run(&prog.module);
                std::hint::black_box(&an.escape);
            }
        })
    });

    c.bench_function("acquire_detection_corpus", |b| {
        let analyses: Vec<_> = programs
            .iter()
            .map(|prog| ModuleAnalysis::run(&prog.module))
            .collect();
        b.iter(|| {
            for (prog, an) in programs.iter().zip(&analyses) {
                for (fid, _) in prog.module.iter_funcs() {
                    let info = detect_acquires(
                        &prog.module,
                        &an.points_to,
                        &an.escape,
                        fid,
                        DetectMode::AddressControl,
                    );
                    std::hint::black_box(info.count());
                }
            }
        })
    });

    for (label, parallel) in [("pipeline_sequential", false), ("pipeline_parallel", true)] {
        c.bench_function(label, |b| {
            b.iter(|| {
                for prog in &programs {
                    let r = run_pipeline(
                        &prog.module,
                        &PipelineConfig {
                            variant: Variant::Control,
                            target: TargetModel::X86Tso,
                            parallel,
                        },
                    );
                    std::hint::black_box(r.report.full_fences());
                }
            })
        });
    }

    // The golden-test / figure-binary access pattern: every automatic
    // variant × target, as individual runs vs. one batch sharing the
    // module analysis, contexts, and per-variant acquire detection.
    let mut sweep = Vec::new();
    for variant in Variant::automatic() {
        for target in [
            TargetModel::X86Tso,
            TargetModel::ScHardware,
            TargetModel::Weak,
        ] {
            sweep.push(PipelineConfig {
                variant,
                target,
                parallel: false,
            });
        }
    }
    c.bench_function("pipeline_sweep_individual", |b| {
        b.iter(|| {
            for prog in &programs {
                for config in &sweep {
                    let r = run_pipeline(&prog.module, config);
                    std::hint::black_box(r.report.full_fences());
                }
            }
        })
    });
    c.bench_function("pipeline_sweep_batch", |b| {
        b.iter(|| {
            for prog in &programs {
                let rs = run_pipeline_batch(&prog.module, &sweep);
                std::hint::black_box(rs.iter().map(|r| r.report.full_fences()).sum::<usize>());
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analysis
}
criterion_main!(benches);
