//! Criterion benches for the static side: points-to + escape analysis,
//! acquire detection, and the full pipeline over the whole corpus
//! (sequential vs. the crossbeam-parallel per-function driver).

use corpus::Params;
use criterion::{criterion_group, criterion_main, Criterion};
use fence_analysis::ModuleAnalysis;
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::{run_pipeline, PipelineConfig, TargetModel, Variant};

fn bench_analysis(c: &mut Criterion) {
    let p = Params::default();
    let programs = corpus::programs(&p);

    c.bench_function("points_to_escape_corpus", |b| {
        b.iter(|| {
            for prog in &programs {
                let an = ModuleAnalysis::run(&prog.module);
                std::hint::black_box(&an.escape);
            }
        })
    });

    c.bench_function("acquire_detection_corpus", |b| {
        let analyses: Vec<_> = programs
            .iter()
            .map(|prog| ModuleAnalysis::run(&prog.module))
            .collect();
        b.iter(|| {
            for (prog, an) in programs.iter().zip(&analyses) {
                for (fid, _) in prog.module.iter_funcs() {
                    let info = detect_acquires(
                        &prog.module,
                        &an.points_to,
                        &an.escape,
                        fid,
                        DetectMode::AddressControl,
                    );
                    std::hint::black_box(info.count());
                }
            }
        })
    });

    for (label, parallel) in [("pipeline_sequential", false), ("pipeline_parallel", true)] {
        c.bench_function(label, |b| {
            b.iter(|| {
                for prog in &programs {
                    let r = run_pipeline(
                        &prog.module,
                        &PipelineConfig {
                            variant: Variant::Control,
                            target: TargetModel::X86Tso,
                            parallel,
                        },
                    );
                    std::hint::black_box(r.report.full_fences());
                }
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_analysis
}
criterion_main!(benches);
