//! Scaling bench: acquire detection (oracle construction + both slicer
//! passes, Address+Control) on `corpus::synthetic_scaled(n)`, seed
//! algorithm vs. the inverted-writer-index one.
//!
//! The seed stage pays an `O(writers)` linear scan per memory read
//! reached by a slice plus one owned `BitSet` clone per access; the
//! optimized stage enumerates only the writers whose location sets
//! intersect the read's (inverted `loc → writers` index, unknown-top
//! bucket, interned borrowed views, push-style queries). The gap must
//! widen with `n` — the acceptance bar for this PR is ≥5× at the
//! largest size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_analysis::ModuleAnalysis;
use fence_bench::naive::naive_detect_acquires;
use fenceplace::acquire::{detect_acquires, DetectMode};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("acquire_scaling");
    for n in [250usize, 1000, 4000, 16000] {
        let module = corpus::synthetic_scaled(n);
        let an = ModuleAnalysis::run(&module);

        // The two detectors must agree before we time anything.
        for (fid, func) in module.iter_funcs() {
            for mode in [DetectMode::Control, DetectMode::AddressControl] {
                let seed = naive_detect_acquires(&module, &an.points_to, &an.escape, fid, mode);
                let fast = detect_acquires(&module, &an.points_to, &an.escape, fid, mode);
                assert_eq!(
                    seed.sync_reads, fast.sync_reads,
                    "{}: sync reads diverge at n={n} under {mode:?}",
                    func.name
                );
                assert_eq!(seed.control, fast.control, "{}: control", func.name);
                assert_eq!(seed.address, fast.address, "{}: address", func.name);
            }
        }

        group.bench_with_input(BenchmarkId::new("seed", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for (fid, _) in module.iter_funcs() {
                    total += naive_detect_acquires(
                        &module,
                        &an.points_to,
                        &an.escape,
                        fid,
                        DetectMode::AddressControl,
                    )
                    .count();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("inverted", n), &n, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for (fid, _) in module.iter_funcs() {
                    total += detect_acquires(
                        &module,
                        &an.points_to,
                        &an.escape,
                        fid,
                        DetectMode::AddressControl,
                    )
                    .count();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scaling
}
criterion_main!(benches);
