//! Multi-module scaling bench: the fleet driver against the sequential
//! per-module batch loop it replaces.
//!
//! Workloads: the 26-module kernel+corpus evaluation set, and a 104-
//! module "many small modules" set (four stamped-out copies) — the batch
//! shape the fleet schedules best, since per-(module, function) units
//! from every module share one pool pass with no module-boundary
//! barrier. On a multi-core host `fleet_pool` must beat the loop ≥1.3×;
//! on a 1-core container the pool degrades to inline execution and the
//! claim collapses to parity (`fleet_seq` ≈ loop), which is what CI's
//! 1-core runner checks implicitly via the golden fleet test.

use corpus::Params;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fenceplace::{run_fleet_with, run_pipeline_batch, FleetJob, PipelineConfig, Variant};

fn sweep() -> Vec<PipelineConfig> {
    vec![
        PipelineConfig::for_variant(Variant::Pensieve),
        PipelineConfig::for_variant(Variant::AddressControl),
        PipelineConfig::for_variant(Variant::Control),
    ]
}

fn bench_fleet(c: &mut Criterion) {
    let p = Params::default();
    let base = corpus::manifest::full_fleet(&p);
    let configs = sweep();

    // One module set per workload size: 1x (26 modules) and 4x (104).
    let mut group = c.benchmark_group("fleet_scaling");
    for copies in [1usize, 4] {
        let jobs: Vec<FleetJob<'_>> = (0..copies)
            .flat_map(|k| {
                base.iter()
                    .map(move |e| FleetJob::new(format!("{}#{k}", e.name), &e.module, sweep()))
            })
            .collect();

        // The fleet must agree with the loop before we time anything.
        let (fleet, _) = run_fleet_with(&jobs, true);
        for (job, fr) in jobs.iter().zip(&fleet) {
            let want = run_pipeline_batch(job.module, &job.configs);
            for (w, g) in want.iter().zip(&fr.results) {
                assert_eq!(w.points, g.points, "{}: fleet diverges from loop", job.name);
            }
        }

        group.bench_with_input(
            BenchmarkId::new("per_module_loop", jobs.len()),
            &jobs,
            |b, jobs| {
                b.iter(|| {
                    for j in jobs {
                        criterion::black_box(run_pipeline_batch(j.module, &configs));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fleet_seq", jobs.len()),
            &jobs,
            |b, jobs| b.iter(|| criterion::black_box(run_fleet_with(jobs, false))),
        );
        group.bench_with_input(
            BenchmarkId::new("fleet_pool", jobs.len()),
            &jobs,
            |b, jobs| b.iter(|| criterion::black_box(run_fleet_with(jobs, true))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
