//! Multi-module scaling bench: the fleet driver against the sequential
//! per-module batch loop it replaces.
//!
//! Workloads: the 26-module kernel+corpus evaluation set, and a 24-module
//! *varied-size* synthetic fleet — `synthetic_scaled(n)` at a geometric
//! spread of sizes (n = 256 .. ~6k escaping accesses, three distinct
//! modules per size, each seeded by its own `n` so no two are clones).
//! The varied set is the shape the fleet schedules best: per-(module,
//! function) units of wildly different weights share one pool pass with
//! no module-boundary barrier, so big modules can't stall small ones the
//! way a per-module loop forces them to. On a multi-core host
//! `fleet_pool` must beat the loop ≥1.3×; on a 1-core container the pool
//! degrades to inline execution and the claim collapses to parity
//! (`fleet_seq` ≈ loop), which is what CI's 1-core runner checks
//! implicitly via the golden fleet test.

use corpus::Params;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_ir::Module;
use fenceplace::{run_fleet_with, run_pipeline_batch, FleetJob, PipelineConfig, Variant};

fn sweep() -> Vec<PipelineConfig> {
    vec![
        PipelineConfig::for_variant(Variant::Pensieve),
        PipelineConfig::for_variant(Variant::AddressControl),
        PipelineConfig::for_variant(Variant::Control),
    ]
}

/// The varied-size synthetic fleet: a geometric ladder of module sizes,
/// three modules per rung (offset so each gets its own RNG stream).
/// Sizes span ~25x end to end — small modules finish their units early
/// and the scheduler backfills with the big modules' functions.
fn varied_synthetic() -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for step in 0..8u32 {
        let base = 256usize << (step / 2);
        let n = if step % 2 == 0 { base } else { base + base / 2 };
        for k in 0..3usize {
            let size = n + k * (n / 8).max(16);
            out.push((format!("syn_{size}"), corpus::synthetic_scaled(size)));
        }
    }
    out
}

fn bench_fleet(c: &mut Criterion) {
    let p = Params::default();
    let base = corpus::manifest::full_fleet(&p);
    let synth = varied_synthetic();
    let configs = sweep();

    // Two workloads: the evaluation corpus and the varied synthetic set.
    let workloads: Vec<(&str, Vec<FleetJob<'_>>)> = vec![
        (
            "corpus",
            base.iter()
                .map(|e| FleetJob::new(e.name.clone(), &e.module, sweep()))
                .collect(),
        ),
        (
            "varied",
            synth
                .iter()
                .map(|(name, m)| FleetJob::new(name.clone(), m, sweep()))
                .collect(),
        ),
    ];

    let mut group = c.benchmark_group("fleet_scaling");
    for (label, jobs) in &workloads {
        // The fleet must agree with the loop before we time anything.
        let (fleet, _) = run_fleet_with(jobs, true);
        for (job, fr) in jobs.iter().zip(&fleet) {
            let want = run_pipeline_batch(job.module, &job.configs);
            for (w, g) in want.iter().zip(&fr.results) {
                assert_eq!(w.points, g.points, "{}: fleet diverges from loop", job.name);
            }
        }

        group.bench_with_input(
            BenchmarkId::new("per_module_loop", label),
            jobs,
            |b, jobs| {
                b.iter(|| {
                    for j in jobs {
                        criterion::black_box(run_pipeline_batch(j.module, &configs));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fleet_seq", label), jobs, |b, jobs| {
            b.iter(|| criterion::black_box(run_fleet_with(jobs, false)))
        });
        group.bench_with_input(BenchmarkId::new("fleet_pool", label), jobs, |b, jobs| {
            b.iter(|| criterion::black_box(run_fleet_with(jobs, true)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet
}
criterion_main!(benches);
