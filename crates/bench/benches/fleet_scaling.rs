//! Multi-module scaling bench: the fleet driver against the sequential
//! per-module batch loop it replaces.
//!
//! Workloads: the 26-module kernel+corpus evaluation set, and a 24-module
//! *varied-size* synthetic fleet — `synthetic_scaled(n)` at a geometric
//! spread of sizes (n = 256 .. ~6k escaping accesses, three distinct
//! modules per size, each seeded by its own `n` so no two are clones).
//! The varied set is the shape the fleet schedules best: per-(module,
//! function) units of wildly different weights share one pool pass with
//! no module-boundary barrier, so big modules can't stall small ones the
//! way a per-module loop forces them to. On a multi-core host
//! `fleet_pool` must beat the loop ≥1.3×; on a 1-core container the pool
//! degrades to inline execution and the claim collapses to parity
//! (`fleet_seq` ≈ loop), which is what CI's 1-core runner checks
//! implicitly via the golden fleet test.

use corpus::Params;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fence_ir::Module;
use fenceplace::{
    run_fleet_streamed, run_fleet_with, run_pipeline_batch, FleetJob, FleetOptions, FleetResult,
    FleetStats, PipelineConfig, StreamItem, Variant,
};

fn sweep() -> Vec<PipelineConfig> {
    vec![
        PipelineConfig::for_variant(Variant::Pensieve),
        PipelineConfig::for_variant(Variant::AddressControl),
        PipelineConfig::for_variant(Variant::Control),
    ]
}

/// The varied-size synthetic fleet: a geometric ladder of module sizes,
/// three modules per rung (offset so each gets its own RNG stream).
/// Sizes span ~25x end to end — small modules finish their units early
/// and the scheduler backfills with the big modules' functions.
fn varied_synthetic() -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for step in 0..8u32 {
        let base = 256usize << (step / 2);
        let n = if step % 2 == 0 { base } else { base + base / 2 };
        for k in 0..3usize {
            let size = n + k * (n / 8).max(16);
            out.push((format!("syn_{size}"), corpus::synthetic_scaled(size)));
        }
    }
    out
}

fn bench_fleet(c: &mut Criterion) {
    let p = Params::default();
    let base = corpus::manifest::full_fleet(&p);
    let synth = varied_synthetic();
    let configs = sweep();

    // Two workloads: the evaluation corpus and the varied synthetic set.
    let workloads: Vec<(&str, Vec<FleetJob<'_>>)> = vec![
        (
            "corpus",
            base.iter()
                .map(|e| FleetJob::new(e.name.clone(), &e.module, sweep()))
                .collect(),
        ),
        (
            "varied",
            synth
                .iter()
                .map(|(name, m)| FleetJob::new(name.clone(), m, sweep()))
                .collect(),
        ),
    ];

    let mut group = c.benchmark_group("fleet_scaling");
    for (label, jobs) in &workloads {
        // The fleet must agree with the loop before we time anything.
        let (fleet, _) = run_fleet_with(jobs, true);
        for (job, fr) in jobs.iter().zip(&fleet) {
            let want = run_pipeline_batch(job.module, &job.configs);
            for (w, g) in want.iter().zip(&fr.results) {
                assert_eq!(w.points, g.points, "{}: fleet diverges from loop", job.name);
            }
        }

        group.bench_with_input(
            BenchmarkId::new("per_module_loop", label),
            jobs,
            |b, jobs| {
                b.iter(|| {
                    for j in jobs {
                        criterion::black_box(run_pipeline_batch(j.module, &configs));
                    }
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("fleet_seq", label), jobs, |b, jobs| {
            b.iter(|| criterion::black_box(run_fleet_with(jobs, false)))
        });
        group.bench_with_input(BenchmarkId::new("fleet_pool", label), jobs, |b, jobs| {
            b.iter(|| criterion::black_box(run_fleet_with(jobs, true)))
        });
    }
    group.finish();
}

/// Streamed-ingestion rung: the varied fleet written out as one `*.ir`
/// file per module, streamed back through a `dir:` spec — resident
/// (`window: None`, whole corpus materialized) against windowed
/// admission (`window: 4`, O(window) peak residency). Before timing,
/// the two runs must produce identical placements and the windowed
/// run's resident-memory high-water (`FleetStats::peak_resident_*`)
/// must be bounded by the window; the peaks are printed so the rung
/// doubles as a residency report.
fn bench_streamed(c: &mut Criterion) {
    let synth = varied_synthetic();
    let dir = std::env::temp_dir().join(format!("fleet-scaling-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, m) in &synth {
        std::fs::write(
            dir.join(format!("{name}.ir")),
            fence_ir::printer::print_module(m),
        )
        .unwrap();
    }
    let configs = sweep();

    // The bench crate sits below the umbrella crate, so it carries its
    // own copy of the ModuleSource -> StreamItem adapter.
    let items = || {
        let mut source = corpus::ModuleSource::new(Params::default());
        source
            .push_spec(&format!("dir:{}", dir.display()))
            .expect("dir spec queues");
        source.map(|item| match item.expect("scratch dir reads cleanly") {
            corpus::SourceItem::Module(e) => StreamItem::Module {
                name: e.name,
                module: e.module,
            },
            corpus::SourceItem::Text { name, text } => StreamItem::Text { name, text },
        })
    };
    let run = |window: Option<usize>| -> (Vec<FleetResult>, FleetStats) {
        let mut results: Vec<Option<FleetResult>> = (0..synth.len()).map(|_| None).collect();
        let (_, stats) = run_fleet_streamed(
            items(),
            &configs,
            &FleetOptions {
                parallel: true,
                window,
                ..FleetOptions::default()
            },
            |i, fr| results[i] = Some(fr),
        );
        let results = results.into_iter().map(Option::unwrap).collect();
        (results, stats)
    };

    // Windowed and resident streaming must agree before we time anything,
    // and the window must actually bound residency.
    let (windowed, wstats) = run(Some(4));
    let (resident, rstats) = run(None);
    assert_eq!(rstats.peak_resident_modules, synth.len());
    assert!(
        wstats.peak_resident_modules <= 4,
        "window breached: {} modules resident",
        wstats.peak_resident_modules
    );
    assert!(wstats.peak_resident_insts <= rstats.peak_resident_insts);
    for (w, r) in windowed.iter().zip(&resident) {
        assert_eq!(w.name, r.name);
        for (wr, rr) in w.results.iter().zip(&r.results) {
            assert_eq!(wr.points, rr.points, "{}: streamed diverges", w.name);
        }
    }
    eprintln!(
        "stream rung: resident peak {} modules / {} insts; window=4 peak {} modules / {} insts",
        rstats.peak_resident_modules,
        rstats.peak_resident_insts,
        wstats.peak_resident_modules,
        wstats.peak_resident_insts
    );

    let mut group = c.benchmark_group("fleet_streaming");
    group.bench_function("resident_dir", |b| {
        b.iter(|| criterion::black_box(run(None)))
    });
    group.bench_function("windowed4_dir", |b| {
        b.iter(|| criterion::black_box(run(Some(4))))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet, bench_streamed
}
criterion_main!(benches);
