//! The paper's Figure 2 worked example: legacy DRF code with a busy-wait
//! synchronization and two may-alias pointers. Delay-set style placement
//! needs 5 full fences; pruning with the acquire signatures leaves 2.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::Value;
use fenceplace::{run_pipeline, PipelineConfig, Variant};

fn main() {
    // P1:  a1: x = ..;  a2: .. = y;  a3: flag = 1
    // P2:  b1: *p1 = ..; b2: .. = *p2; b3: while(flag != 1);
    //      b4: y = ..;  b5: .. = x
    // p1/p2 may alias x and y but not flag (they are unknown pointers).
    let mut mb = ModuleBuilder::new("figure2");
    let x = mb.global("x", 1);
    let y = mb.global("y", 1);
    let flag = mb.global("flag", 1);

    let mut p1 = FunctionBuilder::new("p1", 0);
    p1.store(x, 1i64); // a1
    let _ = p1.load(y); // a2
    p1.store(flag, 1i64); // a3
    p1.ret(None);
    mb.add_func(p1.build());

    let mut p2 = FunctionBuilder::new("p2", 2);
    p2.store(Value::Arg(0), 7i64); // b1: *p1 =
    let _ = p2.load(Value::Arg(1)); // b2: = *p2
    p2.spin_while_eq(flag, 0i64); // b3: while (flag != 1);
    p2.store(y, 2i64); // b4: y =
    let _ = p2.load(x); // b5: = x
    p2.ret(None);
    mb.add_func(p2.build());
    let module = mb.finish();

    let pensieve = run_pipeline(&module, &PipelineConfig::for_variant(Variant::Pensieve));
    let control = run_pipeline(&module, &PipelineConfig::for_variant(Variant::Control));

    println!("Figure 2 — fence placement on the legacy DRF example\n");
    println!(
        "Delay-set (Pensieve) placement: {} full fences  (paper: 5)",
        pensieve.report.full_fences()
    );
    for p in &pensieve.points {
        println!(
            "   fence at func {:?} block {:?} gap {}",
            p.func, p.block, p.gap
        );
    }
    println!(
        "\nPruned placement (Control):     {} full fences  (paper: 2 — F2, F4)",
        control.report.full_fences()
    );
    for p in &control.points {
        if p.kind == fence_ir::FenceKind::Full {
            println!(
                "   fence at func {:?} block {:?} gap {}",
                p.func, p.block, p.gap
            );
        }
    }
    println!(
        "\nOrderings: {} generated, {} survive pruning; the only acquire is the flag spin-read.",
        control.report.total_orderings(),
        control.report.total_kept()
    );
}
