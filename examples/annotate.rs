//! The paper's *alternative application* (§1.3): instead of placing
//! fences, emit the minimal acquire annotations that would make a legacy
//! program DRF-compliant for a C11-style compiler.
//!
//! ```text
//! cargo run --example annotate
//! ```

use fence_analysis::ModuleAnalysis;
use fenceplace::acquire::{detect_acquires, DetectMode};

fn main() {
    let p = corpus::Params::tiny();
    for prog in corpus::programs(&p) {
        let an = ModuleAnalysis::run(&prog.module);
        let mut lines = Vec::new();
        for (fid, func) in prog.module.iter_funcs() {
            let info = detect_acquires(
                &prog.module,
                &an.points_to,
                &an.escape,
                fid,
                DetectMode::Control,
            );
            for iid in info.sync_read_ids() {
                lines.push(format!(
                    "   fn {:<18} {}: mark memory_order_acquire",
                    func.name, iid
                ));
            }
        }
        println!(
            "{} — {} acquire annotation(s) suffice:",
            prog.name,
            lines.len()
        );
        for l in lines.iter().take(6) {
            println!("{l}");
        }
        if lines.len() > 6 {
            println!("   ... and {} more", lines.len() - 6);
        }
    }
}
