//! Quickstart: build the classic message-passing (MP) program in IR, run
//! the fence-placement pipeline under each variant, and execute the
//! instrumented code on the TSO simulator.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::printer::print_module;
use fenceplace::{run_pipeline, PipelineConfig, Variant};
use memsim::{Simulator, ThreadSpec};

fn main() {
    // --- 1. build the MP producer/consumer module ---
    let mut mb = ModuleBuilder::new("mp");
    let data = mb.global("data", 1);
    let flag = mb.global("flag", 1);

    let mut p = FunctionBuilder::new("producer", 0);
    p.store(data, 42i64);
    p.store(flag, 1i64);
    p.ret(None);
    let producer = mb.add_func(p.build());

    let mut c = FunctionBuilder::new("consumer", 0);
    c.spin_while_eq(flag, 0i64); // the classic ad hoc acquire
    let v = c.load(data);
    c.ret(Some(v));
    let consumer = mb.add_func(c.build());
    let module = mb.finish();

    println!("== input module ==\n{}", print_module(&module));

    // --- 2. run the pipeline under each variant ---
    for variant in Variant::automatic() {
        let result = run_pipeline(&module, &PipelineConfig::for_variant(variant));
        println!(
            "{:<16} acquires={:<2} orderings {:>3} -> {:<3} full fences={} directives={}",
            variant.name(),
            result.report.acquires(),
            result.report.total_orderings(),
            result.report.total_kept(),
            result.report.full_fences(),
            result.report.compiler_fences(),
        );

        // --- 3. execute the instrumented module on the TSO simulator ---
        let sim = Simulator::new(&result.module);
        let run = sim
            .run(&[
                ThreadSpec {
                    func: producer,
                    args: vec![],
                },
                ThreadSpec {
                    func: consumer,
                    args: vec![],
                },
            ])
            .expect("simulation runs");
        println!(
            "  consumer read data = {} in {} cycles ({} dynamic fences)",
            run.retvals[1], run.cycles, run.full_fences
        );
        assert_eq!(run.retvals[1], 42, "MP must deliver the payload");
    }
    println!("\nThe flag spin-read is the only acquire Control finds; the");
    println!("data read's orderings are pruned — fewer fences, same result.");
}
