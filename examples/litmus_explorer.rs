//! Exhaustively enumerate litmus-test outcomes under SC, TSO, and a weak
//! model — with and without the fences the pipeline would place.
//!
//! ```text
//! cargo run --example litmus_explorer
//! ```

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::FenceKind;
use memsim::{enumerate, LitmusModel};

fn sb(with_fence: bool) -> (fence_ir::Module, Vec<(fence_ir::FuncId, Vec<i64>)>) {
    let mut mb = ModuleBuilder::new("sb");
    let x = mb.global("x", 1);
    let y = mb.global("y", 1);
    let mk = |mb: &mut ModuleBuilder, name: &str, a, b| {
        let mut f = FunctionBuilder::new(name, 0);
        f.store(a, 1i64);
        if with_fence {
            f.fence(FenceKind::Full);
        }
        let r = f.load(b);
        f.ret(Some(r));
        mb.add_func(f.build())
    };
    let p0 = mk(&mut mb, "p0", x, y);
    let p1 = mk(&mut mb, "p1", y, x);
    (mb.finish(), vec![(p0, vec![]), (p1, vec![])])
}

fn main() {
    println!("SB (store buffering): x=1; r0=y  ||  y=1; r1=x\n");
    for fenced in [false, true] {
        let (m, t) = sb(fenced);
        println!("{}fenced:", if fenced { "" } else { "un" });
        for model in [
            LitmusModel::Sc,
            LitmusModel::Tso,
            LitmusModel::Weak { window: 4 },
        ] {
            let outcomes = enumerate(&m, &t, model);
            let names: Vec<String> = outcomes
                .iter()
                .map(|o| format!("(r0={},r1={})", o[0], o[1]))
                .collect();
            let violation = outcomes.contains(&vec![0, 0]);
            println!(
                "   {:<18} {:<40} {}",
                format!("{model:?}"),
                names.join(" "),
                if violation { "<-- non-SC outcome!" } else { "" }
            );
        }
        println!();
    }
    println!("TSO relaxes w->r: the (0,0) outcome appears without fences and");
    println!("disappears once a full fence separates each store from its load —");
    println!("exactly the orderings the pipeline keeps on x86-TSO.");
}
