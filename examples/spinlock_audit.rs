//! Audit the nine Table II synchronization kernels: which acquires match
//! the control signature, the address signature, or only the address
//! signature (the paper's empirical claim: none).
//!
//! ```text
//! cargo run --example spinlock_audit
//! ```

use fence_analysis::ModuleAnalysis;
use fenceplace::acquire::{detect_acquires, DetectMode};

fn main() {
    println!("Synchronization-kernel audit (Table II)\n");
    for k in corpus::kernels::all() {
        let an = ModuleAnalysis::run(&k.module);
        println!("{} — {}", k.name, k.citation);
        for (fid, func) in k.module.iter_funcs() {
            let info = detect_acquires(
                &k.module,
                &an.points_to,
                &an.escape,
                fid,
                DetectMode::AddressControl,
            );
            if info.count() == 0 {
                continue;
            }
            println!(
                "   fn {:<12} {} acquire(s): {} control, {} address, {} pure-address",
                func.name,
                info.count(),
                info.control.count(),
                info.address.count(),
                info.pure_address_ids().len()
            );
        }
        println!();
    }
    println!("No kernel has a pure-address acquire — every address acquire is");
    println!("also reached through a conditional (the paper's Table II result).");
}
