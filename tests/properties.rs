//! Property-based tests (proptest) over randomly generated
//! flag-synchronized programs: the detector is conservative (every
//! generator-known acquire is found by Address+Control) and the pruning
//! rules never drop an ordering whose source/sink the rules require.

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::Module;
use fenceplace::acquire::{detect_acquires, pensieve_all_reads, DetectMode};
use fenceplace::orderings::{FuncOrderings, OrderKind};
use fenceplace::{run_pipeline, PipelineConfig, Variant};
use proptest::prelude::*;

/// A little random-program generator: a consumer function that spins on
/// one of `n_flags` flags, then performs a shuffle of data reads/writes.
#[derive(Debug, Clone)]
struct Shape {
    n_data: usize,
    ops: Vec<(bool, usize)>, // (is_read, data index)
    flag_idx: usize,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (1usize..5, 0usize..3).prop_flat_map(|(n_data, flag_idx)| {
        proptest::collection::vec((any::<bool>(), 0usize..n_data), 1..8).prop_map(move |ops| {
            Shape {
                n_data,
                ops,
                flag_idx,
            }
        })
    })
}

fn build(shape: &Shape) -> (Module, fence_ir::FuncId, fence_ir::InstId) {
    let mut mb = ModuleBuilder::new("gen");
    let flags = mb.global("flags", 4);
    let data = mb.global("data", shape.n_data.max(1) as u32);
    let mut f = FunctionBuilder::new("consumer", 0);
    let flag_p = f.gep(flags, shape.flag_idx as i64);
    // The spin: its load is the known acquire.
    let header = f.current_block();
    let _ = header;
    // Build spin manually so we can capture the load's id.
    let spin = f.new_block("spin");
    let cont = f.new_block("cont");
    f.br(spin);
    f.switch_to(spin);
    let lv = f.load(flag_p);
    let acquire_inst = lv.as_inst().unwrap();
    let c = f.eq(lv, 0i64);
    f.condbr(c, spin, cont);
    f.switch_to(cont);
    for &(is_read, idx) in &shape.ops {
        let p = f.gep(data, idx as i64);
        if is_read {
            let _ = f.load(p);
        } else {
            f.store(p, 1i64);
        }
    }
    f.ret(None);
    let fid = mb.add_func(f.build());
    (mb.finish(), fid, acquire_inst)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservatism: the generator's known acquire is always detected,
    /// by both algorithms (it is a control acquire).
    #[test]
    fn known_acquire_always_detected(shape in shape_strategy()) {
        let (m, fid, acquire) = build(&shape);
        let an = fence_analysis::ModuleAnalysis::run(&m);
        for mode in [DetectMode::Control, DetectMode::AddressControl] {
            let info = detect_acquires(&m, &an.points_to, &an.escape, fid, mode);
            prop_assert!(
                info.sync_reads.contains(acquire.index()),
                "{mode:?} missed the spin acquire"
            );
        }
    }

    /// Monotonicity: Control ⊆ Address+Control ⊆ escaping reads.
    #[test]
    fn detection_monotone(shape in shape_strategy()) {
        let (m, fid, _) = build(&shape);
        let an = fence_analysis::ModuleAnalysis::run(&m);
        let ctrl = detect_acquires(&m, &an.points_to, &an.escape, fid, DetectMode::Control);
        let both = detect_acquires(&m, &an.points_to, &an.escape, fid, DetectMode::AddressControl);
        let pens = pensieve_all_reads(&m, &an.escape, fid);
        for i in ctrl.sync_reads.iter() {
            prop_assert!(both.sync_reads.contains(i));
        }
        for i in both.sync_reads.iter() {
            prop_assert!(pens.sync_reads.contains(i));
        }
    }

    /// Pruning-rule correctness (Table I): every surviving r→r pair has an
    /// acquire source; every surviving w→r pair has an acquire sink; no
    /// r→w / w→w pair is ever dropped.
    #[test]
    fn pruning_respects_table1(shape in shape_strategy()) {
        let (m, fid, _) = build(&shape);
        let an = fence_analysis::ModuleAnalysis::run(&m);
        let info = detect_acquires(&m, &an.points_to, &an.escape, fid, DetectMode::Control);
        let substrate = fence_ir::FuncSubstrate::new(m.func(fid));
        let ords = FuncOrderings::generate(&m, &an.escape, fid, &substrate);
        let kept = ords.prune(&info.sync_reads);
        let kept_set: std::collections::HashSet<(u32, u32)> = kept.iter().collect();
        let mut n_pairs = 0usize;
        for pair in ords.iter_pairs() {
            n_pairs += 1;
            let (a, b) = pair;
            let fa = &ords.accesses[a as usize];
            let fb = &ords.accesses[b as usize];
            let expected = match ords.kind(pair) {
                OrderKind::RR => info.sync_reads.contains(fa.inst.index()),
                OrderKind::WR => info.sync_reads.contains(fb.inst.index()),
                OrderKind::RW | OrderKind::WW => true,
            };
            prop_assert_eq!(kept_set.contains(&pair), expected);
            prop_assert_eq!(kept.keeps(a, b), expected);
        }
        // The analytic counts agree with the explicit enumeration.
        prop_assert_eq!(ords.counts().iter().sum::<usize>(), n_pairs);
        prop_assert_eq!(kept.len(), kept_set.len());
    }

    /// The full pipeline never panics and produces verifying modules on
    /// arbitrary generated shapes.
    #[test]
    fn pipeline_total(shape in shape_strategy()) {
        let (m, _, _) = build(&shape);
        for variant in Variant::automatic() {
            let r = run_pipeline(&m, &PipelineConfig::for_variant(variant));
            prop_assert!(fence_ir::verify_module(&r.module).is_empty());
        }
    }

    /// Printer/parser round-trip on generated programs.
    #[test]
    fn print_parse_roundtrip(shape in shape_strategy()) {
        let (m, _, _) = build(&shape);
        let text = fence_ir::printer::print_module(&m);
        let parsed = fence_ir::parser::parse_module(&text).expect("parses");
        let text2 = fence_ir::printer::print_module(&parsed);
        prop_assert_eq!(text, text2);
    }
}

/// A generator stressing the alias oracle's inverted writer index:
/// direct global accesses, geps, private/published allocs, accesses
/// through unknown pointer args (the top bucket), multi-location
/// `select` addresses (cross-bucket dedup), RMWs and lock intrinsics.
#[derive(Debug, Clone)]
struct AliasShape {
    n_globals: usize,
    ops: Vec<(usize, usize, usize)>, // (opcode, global a, global b)
}

fn alias_shape_strategy() -> impl Strategy<Value = AliasShape> {
    (2usize..6).prop_flat_map(|n_globals| {
        proptest::collection::vec((0usize..10, 0usize..n_globals, 0usize..n_globals), 1..24)
            .prop_map(move |ops| AliasShape { n_globals, ops })
    })
}

fn build_alias(shape: &AliasShape) -> (Module, fence_ir::FuncId) {
    let mut mb = ModuleBuilder::new("alias_gen");
    let globals: Vec<_> = (0..shape.n_globals)
        .map(|i| mb.global(format!("g{i}"), 4))
        .collect();
    let mut f = FunctionBuilder::new("f", 2);
    for &(op, a, b) in &shape.ops {
        let ga = globals[a];
        let gb = globals[b];
        match op {
            0 => {
                let _ = f.load(ga);
            }
            1 => f.store(gb, 1i64),
            2 => {
                // Private alloc: a location set disjoint from globals.
                let p = f.alloc(2i64);
                f.store(p, 3i64);
                let _ = f.load(p);
            }
            3 => {
                let p = f.gep(gb, fence_ir::Value::Arg(0));
                f.store(p, 4i64);
            }
            4 => {
                let _ = f.load(fence_ir::Value::Arg(0)); // unknown read
            }
            5 => f.store(fence_ir::Value::Arg(1), 5i64), // unknown-top writer
            6 => {
                let p = f.select(fence_ir::Value::Arg(0), ga, gb);
                f.store(p, 6i64); // multi-location writer
            }
            7 => {
                let p = f.select(fence_ir::Value::Arg(1), ga, gb);
                let _ = f.load(p); // multi-location read
            }
            8 => {
                let _ = f.rmw(fence_ir::RmwOp::Add, ga, 1i64);
            }
            _ => f.lock_acquire(ga),
        }
    }
    f.ret(None);
    let fid = mb.add_func(f.build());
    (mb.finish(), fid)
}

/// The seed's linear `potential_writers` filter, recomputed here from
/// the points-to results alone (owned `to_bitset` sets, full writer
/// scan) — deliberately independent of the oracle's inverted index.
fn seed_potential_writers(
    m: &Module,
    pt: &fence_analysis::PointsTo,
    fid: fence_ir::FuncId,
    read: fence_ir::InstId,
) -> Vec<fence_ir::InstId> {
    use fence_ir::InstKind;
    let func = m.func(fid);
    let num = pt.num_locs();
    let locs_of = |iid: fence_ir::InstId| -> Option<fence_ir::util::BitSet> {
        let inst = func.inst(iid);
        if let Some(addr) = inst.kind.mem_addr() {
            Some(pt.addr_locs(fid, addr).to_bitset(num))
        } else if let InstKind::CallIntrinsic { intr, args } = &inst.kind {
            if intr.is_sync_boundary() {
                args.first().map(|&a| pt.addr_locs(fid, a).to_bitset(num))
            } else {
                None
            }
        } else {
            None
        }
    };
    let Some(rl) = locs_of(read) else {
        return Vec::new();
    };
    let unk = pt.unknown_idx();
    let mut out = Vec::new();
    for (iid, inst) in func.iter_insts() {
        let is_writer = inst.kind.is_mem_write()
            || matches!(
                &inst.kind,
                InstKind::CallIntrinsic { intr, args }
                    if intr.is_sync_boundary() && !args.is_empty()
            );
        if !is_writer || iid == read {
            continue;
        }
        let Some(wl) = locs_of(iid) else { continue };
        if rl.contains(unk) || wl.contains(unk) || rl.intersects(&wl) {
            out.push(iid);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The inverted-index oracle returns exactly the same writer set as
    /// the seed's linear filter, for every access of every generated
    /// module — including unknown-top reads/writers and multi-location
    /// addresses that require cross-bucket dedup.
    #[test]
    fn inverted_index_matches_seed_linear_filter(shape in alias_shape_strategy()) {
        let (m, fid) = build_alias(&shape);
        let pt = fence_analysis::PointsTo::analyze(&m);
        let oracle = fence_analysis::AliasOracle::new(&m, &pt, fid);
        let mut scratch = fence_analysis::alias::WriterScratch::new();
        let func = m.func(fid);
        for (iid, _) in func.iter_insts() {
            let want = seed_potential_writers(&m, &pt, fid, iid);
            // Push-style query with a reused scratch (the slicer's path).
            let mut got = Vec::new();
            oracle.for_each_potential_writer(iid, &mut scratch, |w| got.push(w));
            got.sort();
            prop_assert_eq!(
                &got, &want,
                "writers diverge for inst {} of {:?}",
                iid.index(), &shape
            );
            // The materialized compat API agrees too.
            let mut got_vec = oracle.potential_writers(iid);
            got_vec.sort();
            prop_assert_eq!(got_vec, want);
        }
    }
}
