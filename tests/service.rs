//! Analysis-as-a-service: the serve daemon, its cache, and its wire
//! protocol.
//!
//! Three contracts are pinned here:
//!
//! 1. **Protocol compatibility** — every `jsonl` example in
//!    `docs/PROTOCOL.md` is replayed byte-for-byte against a real
//!    `fenceplace serve --stdio` daemon, so the documented wire bytes
//!    cannot drift from the implementation.
//! 2. **Byte identity** — for every module of the evaluation fleet,
//!    under every sweep config, cold and warm, sequential and pooled,
//!    the service's report document is byte-identical to what the
//!    one-shot CLI path (`run_fleet_opts` + the shared JSON renderer)
//!    produces.
//! 3. **Cache correctness** — warm re-requests of unchanged content do
//!    zero analysis runs and zero CFG builds (pinned via the
//!    thread-local `analysis_runs()` / `cfg_builds()` counters); a
//!    one-function edit re-analyzes the module but rebuilds exactly one
//!    substrate; eviction, invalidation, and warm-budget simulation
//!    behave like their cold counterparts.

use corpus::Params;
use fenceplace::json::module_json;
use fenceplace::{
    run_fleet_opts, CacheDisposition, FleetJob, FleetOptions, PipelineConfig, Service,
    ServiceOptions, TargetModel, Variant,
};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_fenceplace")
}

fn cfg(variant: Variant, target: TargetModel) -> PipelineConfig {
    PipelineConfig {
        variant,
        target,
        parallel: false,
    }
}

fn sweep_configs() -> Vec<PipelineConfig> {
    vec![
        cfg(Variant::Control, TargetModel::X86Tso),
        cfg(Variant::Pensieve, TargetModel::Weak),
        cfg(Variant::Manual, TargetModel::Weak),
    ]
}

/// The full evaluation fleet as (name, printed text) pairs. The service
/// ingests text, and the printer renumbers instruction ids densely — so
/// the CLI baseline must run on the *parsed* form of the same text.
fn fleet_texts() -> Vec<(String, String)> {
    corpus::manifest::full_fleet(&Params::tiny())
        .iter()
        .map(|e| (e.name.clone(), fence_ir::printer::print_module(&e.module)))
        .collect()
}

/// What the one-shot CLI writes per module for these texts: the fleet
/// scheduler over the parsed texts, rendered by the shared renderer.
fn cli_baseline(
    texts: &[(String, String)],
    configs: &[PipelineConfig],
    opts: &FleetOptions,
) -> Vec<String> {
    let modules: Vec<(String, fence_ir::Module)> = texts
        .iter()
        .map(|(name, text)| {
            (
                name.clone(),
                fence_ir::parser::parse_module(text).expect("printed fleet text parses"),
            )
        })
        .collect();
    let jobs: Vec<FleetJob<'_>> = modules
        .iter()
        .map(|(name, m)| FleetJob::new(name.clone(), m, configs.to_vec()))
        .collect();
    let (fleet, _) = run_fleet_opts(&jobs, opts);
    fleet
        .iter()
        .zip(&modules)
        .map(|(fr, (name, _))| module_json(name, configs, fr))
        .collect()
}

// ---------------------------------------------------------------------
// 1. Protocol compatibility: replay docs/PROTOCOL.md byte-for-byte.
// ---------------------------------------------------------------------

/// Extracts the pinned session from the ```jsonl blocks of
/// docs/PROTOCOL.md: `-> ` lines are client input, `<- ` lines the
/// expected daemon output, in order across all blocks (the doc is one
/// continuous session).
fn protocol_session() -> (Vec<String>, Vec<String>) {
    let doc_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/PROTOCOL.md");
    let doc = std::fs::read_to_string(&doc_path).expect("docs/PROTOCOL.md exists");
    let (mut input, mut expected) = (Vec::new(), Vec::new());
    let mut in_jsonl = false;
    for line in doc.lines() {
        if line.starts_with("```") {
            in_jsonl = line.trim() == "```jsonl";
            continue;
        }
        if !in_jsonl {
            continue;
        }
        if let Some(req) = line.strip_prefix("-> ") {
            input.push(req.to_string());
        } else if let Some(resp) = line.strip_prefix("<- ") {
            expected.push(resp.to_string());
        } else {
            panic!("unmarked line inside a jsonl block (responses are single lines): {line:?}");
        }
    }
    assert!(
        input.len() >= 10 && input.len() == expected.len(),
        "PROTOCOL.md session shape: {} requests, {} responses",
        input.len(),
        expected.len()
    );
    (input, expected)
}

#[test]
fn protocol_doc_replays_byte_for_byte() {
    let (input, expected) = protocol_session();
    let mut child = Command::new(bin())
        .args(["serve", "--stdio", "--seq"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --stdio");
    {
        let mut stdin = child.stdin.take().expect("piped stdin");
        for line in &input {
            writeln!(stdin, "{line}").expect("write request");
        }
        // Dropping stdin closes the pipe (EOF = clean shutdown, though
        // the session already ends with an explicit shutdown request).
    }
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "daemon exit: {:?}", out.status);
    let got: Vec<&str> = std::str::from_utf8(&out.stdout)
        .expect("utf8 output")
        .lines()
        .collect();
    assert_eq!(
        got.len(),
        expected.len(),
        "response count (got {:?})",
        got.len()
    );
    for (i, (g, w)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(
            g,
            w,
            "response {} of the PROTOCOL.md session diverged from the doc",
            i + 1
        );
    }
}

// ---------------------------------------------------------------------
// 2. Byte identity with the one-shot CLI path.
// ---------------------------------------------------------------------

#[test]
fn differential_full_fleet_cold_and_warm_seq_and_pooled() {
    let texts = fleet_texts();
    let configs = sweep_configs();
    for parallel in [false, true] {
        let tag = if parallel { "pooled" } else { "seq" };
        let expected = cli_baseline(
            &texts,
            &configs,
            &FleetOptions {
                parallel,
                ..FleetOptions::default()
            },
        );
        let mut service = Service::new(ServiceOptions {
            parallel,
            ..ServiceOptions::default()
        });
        // Cold pass: everything computed from scratch, byte-equal.
        for ((name, text), want) in texts.iter().zip(&expected) {
            let got = service.analyze(name, text, &configs, None);
            assert_eq!(
                got.cache,
                CacheDisposition::Miss,
                "{tag}/{name}: cold pass disposition"
            );
            assert_eq!(&got.report, want, "{tag}/{name}: cold report bytes");
        }
        // Warm pass: served entirely from cache, still byte-equal.
        for ((name, text), want) in texts.iter().zip(&expected) {
            let got = service.analyze(name, text, &configs, None);
            assert_eq!(
                got.cache,
                CacheDisposition::Hit,
                "{tag}/{name}: warm pass disposition"
            );
            assert_eq!(&got.report, want, "{tag}/{name}: warm report bytes");
        }
        let stats = service.stats();
        assert_eq!(stats.misses, texts.len() as u64, "{tag}: misses");
        assert_eq!(stats.hits, texts.len() as u64, "{tag}: hits");
    }
}

/// A module that parses but fails IR validation (bb0 lacks a
/// terminator) is quarantined with the exact bytes the fleet produces.
const SICK_IR: &str =
    "module sick\nglobal g 1\n\nfn f params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n}\n";

#[test]
fn quarantined_module_matches_fleet_bytes() {
    let configs = sweep_configs();
    let expected = cli_baseline(
        &[("sick".to_string(), SICK_IR.to_string())],
        &configs,
        &FleetOptions::default(),
    );
    let mut service = Service::new(ServiceOptions::default());
    let cold = service.analyze("sick", SICK_IR, &configs, None);
    assert_eq!(cold.cache, CacheDisposition::Miss);
    assert_eq!(cold.report, expected[0], "cold quarantine bytes");
    // The verdict is content-keyed and cached: same bytes, same verdict.
    let warm = service.analyze("sick", SICK_IR, &configs, None);
    assert_eq!(warm.cache, CacheDisposition::Hit);
    assert_eq!(warm.report, expected[0], "warm quarantine bytes");
}

// ---------------------------------------------------------------------
// 3. Cache correctness, pinned by the analysis/CFG-build counters.
// ---------------------------------------------------------------------

/// Two functions so a one-function edit has an unchanged neighbor.
const TWO_V1: &str = "module two\nglobal g 1\n\nfn f params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n  ret\n}\n\nfn h params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n  ret\n}\n";
/// Same module with only `h` edited (an extra load); `f` is untouched.
const TWO_V2: &str = "module two\nglobal g 1\n\nfn f params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n  ret\n}\n\nfn h params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n  %1 = load @g\n  ret\n}\n";

/// A sequential service, so the thread-local counters observe every
/// analysis run and CFG build the service performs.
fn seq_service() -> Service {
    Service::new(ServiceOptions {
        parallel: false,
        ..ServiceOptions::default()
    })
}

fn counters() -> (usize, usize) {
    (fence_analysis::analysis_runs(), fence_ir::cfg::cfg_builds())
}

#[test]
fn warm_rerequest_of_unchanged_corpus_does_zero_work() {
    let texts = fleet_texts();
    let configs = sweep_configs();
    let mut service = seq_service();
    for (name, text) in &texts {
        service.analyze(name, text, &configs, None);
    }
    let (a0, c0) = counters();
    for (name, text) in &texts {
        let got = service.analyze(name, text, &configs, None);
        assert_eq!(got.cache, CacheDisposition::Hit, "{name}: warm disposition");
    }
    let (a1, c1) = counters();
    assert_eq!(a1 - a0, 0, "warm corpus re-request ran module analyses");
    assert_eq!(c1 - c0, 0, "warm corpus re-request built CFGs");
}

#[test]
fn one_function_edit_rebuilds_exactly_that_function() {
    let configs = vec![cfg(Variant::Control, TargetModel::X86Tso)];
    let mut service = seq_service();
    let v1 = service.analyze("two", TWO_V1, &configs, None);
    assert_eq!(v1.cache, CacheDisposition::Miss);

    let built_v1 = service.stats().substrates_built;
    let (a0, c0) = counters();
    let v2 = service.analyze("two", TWO_V2, &configs, None);
    let (a1, c1) = counters();
    assert_eq!(
        v2.cache,
        CacheDisposition::Incremental,
        "unchanged `f` donates its substrate"
    );
    assert_eq!(a1 - a0, 1, "module analysis re-runs once on content change");
    // Changed content always re-passes the validation gate (which builds
    // one throwaway CFG per function: 2 here), but only the *edited*
    // function's substrate is rebuilt — 3 total instead of the 4 a cold
    // miss costs.
    assert_eq!(
        c1 - c0,
        3,
        "validation (2) + the edited function's substrate (1)"
    );
    assert_eq!(
        service.stats().substrates_built - built_v1,
        1,
        "only the edited function's substrate is rebuilt"
    );
    assert_eq!(
        service.stats().substrates_reused,
        1,
        "one donated substrate"
    );

    // And the incremental result is still byte-identical to a cold run.
    let expected = cli_baseline(
        &[("two".to_string(), TWO_V2.to_string())],
        &configs,
        &FleetOptions {
            parallel: false,
            ..FleetOptions::default()
        },
    );
    assert_eq!(v2.report, expected[0], "incremental edit bytes");
}

#[test]
fn new_config_on_cached_text_reuses_analysis_and_substrates() {
    let mut service = seq_service();
    let first = service.analyze(
        "two",
        TWO_V1,
        &[cfg(Variant::Control, TargetModel::X86Tso)],
        None,
    );
    assert_eq!(first.cache, CacheDisposition::Miss);
    let (a0, c0) = counters();
    let second = service.analyze(
        "two",
        TWO_V1,
        &[cfg(Variant::Pensieve, TargetModel::Weak)],
        None,
    );
    let (a1, c1) = counters();
    assert_eq!(second.cache, CacheDisposition::Incremental);
    assert_eq!(a1 - a0, 0, "new config reuses the cached module analysis");
    assert_eq!(c1 - c0, 0, "new config reuses the cached substrates");
}

#[test]
fn same_content_different_name_is_a_hit() {
    let mut service = seq_service();
    let configs = vec![cfg(Variant::Control, TargetModel::X86Tso)];
    let a = service.analyze("alpha", TWO_V1, &configs, None);
    assert_eq!(a.cache, CacheDisposition::Miss);
    let b = service.analyze("beta", TWO_V1, &configs, None);
    assert_eq!(
        b.cache,
        CacheDisposition::Hit,
        "content-keyed, not name-keyed"
    );
    assert_eq!(a.hash, b.hash);
    assert!(
        b.report.contains("\"module\": \"beta\""),
        "the report document carries the request's name"
    );

    // Invalidation drops the shared entry under either alias.
    assert_eq!(service.invalidate("nonexistent"), 0);
    assert_eq!(service.invalidate("alpha"), 1);
    let again = service.analyze("beta", TWO_V1, &configs, None);
    assert_eq!(
        again.cache,
        CacheDisposition::Miss,
        "invalidate drops content"
    );
}

#[test]
fn warm_budget_simulation_matches_cold_budgeted_run() {
    let configs = vec![cfg(Variant::Control, TargetModel::X86Tso)];
    let expected = cli_baseline(
        &[("two".to_string(), TWO_V1.to_string())],
        &configs,
        &FleetOptions {
            parallel: false,
            budget: Some(1),
            ..FleetOptions::default()
        },
    );
    let mut service = seq_service();
    // Fill the cache without a budget...
    let cold = service.analyze("two", TWO_V1, &configs, None);
    assert_eq!(cold.cache, CacheDisposition::Miss);
    // ...then ask again with one: the deadline must be simulated even
    // though the cache could have served the unbudgeted report.
    let budgeted = service.analyze("two", TWO_V1, &configs, Some(1));
    assert_eq!(budgeted.cache, CacheDisposition::Hit);
    assert_eq!(budgeted.report, expected[0], "warm budgeted bytes");
    assert!(
        budgeted.report.contains("deadline_exceeded"),
        "budget 1 must trip at the validate boundary"
    );
}

#[test]
fn lru_eviction_under_capacity() {
    let mut service = Service::new(ServiceOptions {
        parallel: false,
        capacity: Some(1),
        ..ServiceOptions::default()
    });
    let configs = vec![cfg(Variant::Control, TargetModel::X86Tso)];
    service.analyze("a", TWO_V1, &configs, None);
    service.analyze("b", TWO_V2, &configs, None);
    assert_eq!(
        service.stats().evictions,
        1,
        "capacity 1 evicts the LRU entry"
    );
    assert_eq!(service.cached_modules(), 1);
    let again = service.analyze("a", TWO_V1, &configs, None);
    assert_eq!(
        again.cache,
        CacheDisposition::Miss,
        "evicted content recomputes"
    );
}

// ---------------------------------------------------------------------
// Socket end-to-end: daemon + client, warm second pass, clean shutdown.
// ---------------------------------------------------------------------

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenceplace-service-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn client(sock: &Path, extra: &[&str]) -> std::process::Output {
    let mut cmd = Command::new(bin());
    cmd.args(["client", "--socket"]).arg(sock);
    cmd.args(extra);
    cmd.output().expect("run client")
}

#[test]
fn socket_daemon_serves_warm_second_pass_and_shuts_down() {
    let dir = scratch("socket");
    let sock = dir.join("d.sock");
    let mut daemon = Command::new(bin())
        .args(["serve", "--seq", "--socket"])
        .arg(&sock)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve --socket");
    // Wait for the daemon to bind.
    for _ in 0..200 {
        if sock.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(sock.exists(), "daemon never bound its socket");

    let out1 = dir.join("pass1");
    let out2 = dir.join("pass2");
    let p1 = client(
        &sock,
        &["--program", "kernel:*", "--out", out1.to_str().unwrap()],
    );
    assert!(
        p1.status.success(),
        "pass 1: {}\n{}",
        String::from_utf8_lossy(&p1.stdout),
        String::from_utf8_lossy(&p1.stderr)
    );
    let p2 = client(
        &sock,
        &[
            "--program",
            "kernel:*",
            "--out",
            out2.to_str().unwrap(),
            "--expect-hit",
        ],
    );
    assert!(
        p2.status.success(),
        "pass 2 (must be all hits): {}\n{}",
        String::from_utf8_lossy(&p2.stdout),
        String::from_utf8_lossy(&p2.stderr)
    );
    // Both passes wrote byte-identical report files.
    let mut reports = 0usize;
    for e in std::fs::read_dir(&out1).expect("pass1 dir") {
        let p = e.expect("dir entry").path();
        let q = out2.join(p.file_name().expect("file name"));
        let (b1, b2) = (
            std::fs::read(&p).expect("pass1 report"),
            std::fs::read(&q).expect("pass2 report"),
        );
        assert_eq!(b1, b2, "cold and warm socket reports differ: {p:?}");
        reports += 1;
    }
    assert!(
        reports >= 9,
        "expected one report per kernel, got {reports}"
    );

    // A cold family under --expect-hit is a contract violation: exit 1.
    let p3 = client(&sock, &["--program", "synthetic:3", "--expect-hit"]);
    assert_eq!(
        p3.status.code(),
        Some(1),
        "cold modules under --expect-hit must exit 1: {}",
        String::from_utf8_lossy(&p3.stderr)
    );

    let bye = client(&sock, &["--shutdown"]);
    assert!(
        bye.status.success(),
        "shutdown client: {}",
        String::from_utf8_lossy(&bye.stderr)
    );
    let status = daemon.wait().expect("daemon exit");
    assert!(status.success(), "daemon exit status: {status:?}");
    assert!(!sock.exists(), "daemon removes its socket file on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
