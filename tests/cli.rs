//! End-to-end tests of the `fenceplace` binary's exit-code contract:
//! 0 = every module completed, 1 = fatal (usage, unresolvable spec,
//! `--fail-fast` trip), 2 = partial success (quarantined modules,
//! reports still written).

use std::path::PathBuf;
use std::process::{Command, Output};

fn fenceplace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fenceplace"))
        .args(args)
        .output()
        .expect("spawn fenceplace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("process terminated by signal")
}

/// A fresh per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenceplace-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Textual IR that parses cleanly but fails the validation gate: bb0
/// has no terminator.
const SICK_IR: &str =
    "module sick\nglobal g 1\n\nfn f params=0 locals=() {\nbb0: ; entry\n  %0 = load @g\n}\n";

#[test]
fn help_exits_zero_and_documents_exit_codes() {
    for flag in ["--help", "-h"] {
        let out = fenceplace(&[flag]);
        assert_eq!(exit_code(&out), 0, "{flag} must exit 0");
        let text = stdout(&out);
        assert!(text.contains("USAGE"), "{flag} prints usage");
        assert!(text.contains("EXIT CODES"), "{flag} documents exit codes");
        assert!(text.contains("--fail-fast") && text.contains("--budget"));
    }
}

#[test]
fn usage_errors_are_fatal() {
    let out = fenceplace(&["--bogus-flag"]);
    assert_eq!(exit_code(&out), 1);
    assert!(stderr(&out).contains("unknown argument"));

    let out = fenceplace(&[]);
    assert_eq!(exit_code(&out), 1, "no programs is a usage error");
    assert!(stderr(&out).contains("no programs"));

    let out = fenceplace(&["--program", "corpus:NoSuchProgram"]);
    assert_eq!(exit_code(&out), 1, "typo'd built-in spec is fatal");
    assert!(stderr(&out).contains("NoSuchProgram"));
}

#[test]
fn clean_run_exits_zero() {
    let out = fenceplace(&["--program", "kernel:Dekker", "--seq"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"modules_failed\": 0"), "{text}");
    assert!(text.contains("\"status\": \"ok\""), "{text}");
}

#[test]
fn invalid_file_module_is_partial_success() {
    let dir = scratch("partial");
    let sick = dir.join("sick.fir");
    std::fs::write(&sick, SICK_IR).unwrap();
    let spec = format!("file:{}", sick.display());
    let reports = dir.join("reports");

    let out = fenceplace(&[
        "--program",
        "kernel:Dekker",
        "--program",
        &spec,
        "--out",
        reports.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"modules_failed\": 1"), "{text}");
    assert!(text.contains("\"status\": \"invalid_ir\""), "{text}");
    assert!(
        text.contains("does not end with a terminator"),
        "verifier diagnostic surfaces in the roll-up: {text}"
    );
    assert!(stderr(&out).contains("quarantined"));

    // Reports are still written for every module, quarantined or not.
    assert!(reports.join("fleet_summary.json").exists());
    let mut module_reports: Vec<_> = std::fs::read_dir(&reports)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    module_reports.sort();
    assert_eq!(module_reports.len(), 3, "{module_reports:?}");
    let sick_report = module_reports
        .iter()
        .find(|n| n.contains("sick") && n.ends_with(".json"))
        .expect("quarantined module still gets a report file");
    let body = std::fs::read_to_string(reports.join(sick_report)).unwrap();
    assert!(body.contains("\"status\": \"invalid_ir\""), "{body}");
    assert!(body.contains("\"stage\": \"validate\""), "{body}");
    assert!(body.contains("\"configs\": [\n  ]"), "no configs: {body}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_file_is_quarantined_at_load() {
    let out = fenceplace(&[
        "--program",
        "kernel:Dekker",
        "--program",
        "file:/no/such/module.fir",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"load_failures\": 1"), "{text}");
    assert!(text.contains("\"status\": \"load_failed\""), "{text}");
}

#[test]
fn fail_fast_turns_partial_into_fatal() {
    let dir = scratch("failfast");
    let sick = dir.join("sick.fir");
    std::fs::write(&sick, SICK_IR).unwrap();
    let spec = format!("file:{}", sick.display());
    let reports = dir.join("reports");

    let out = fenceplace(&[
        "--program",
        "kernel:Dekker",
        "--program",
        &spec,
        "--fail-fast",
        "--out",
        reports.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 1, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("--fail-fast"));
    assert!(
        !reports.exists(),
        "--fail-fast must not write partial reports"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_quarantines_deterministically() {
    // Budget 1 is below any module's per-stage cost, so every module
    // trips its deadline at the first charged stage — still exit 2,
    // and the seq/par roll-ups agree modulo wall-clock time.
    let strip_wall = |text: &str| {
        text.lines()
            .filter(|l| !l.contains("wall_ms"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let mut rollups = Vec::new();
    for mode in [&["--seq"][..], &[][..]] {
        let mut args = vec!["--program", "kernel:*", "--budget", "1"];
        args.extend_from_slice(mode);
        let out = fenceplace(&args);
        assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains("\"status\": \"deadline_exceeded\""), "{text}");
        rollups.push(strip_wall(&text));
    }
    assert_eq!(
        rollups[0], rollups[1],
        "deadline roll-up must be identical under seq and pool scheduling"
    );
}

/// A hand-fenced store-buffering module in textual IR: both full fences
/// are necessary under TSO, so `Manual:x86tso --certify` must come back
/// `certified`.
const FENCED_SB_IR: &str = "module sb
global x 1
global y 1

fn p0 params=0 locals=() {
bb0:
  store @x, c1
  fence full
  %2 = load @y
  ret %2
}

fn p1 params=0 locals=() {
bb0:
  store @y, c1
  fence full
  %2 = load @x
  ret %2
}
";

#[test]
fn certify_flag_model_checks_the_placement() {
    let dir = scratch("certify");
    let sb = dir.join("sb.fir");
    std::fs::write(&sb, FENCED_SB_IR).unwrap();
    let spec = format!("file:{}", sb.display());
    let reports = dir.join("reports");

    let out = fenceplace(&[
        "--program",
        &spec,
        "--config",
        "Manual:x86tso",
        "--certify",
        "--seq",
        "--out",
        reports.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"certifications\": 1"), "{text}");
    assert!(text.contains("\"certify_unsound\": 0"), "{text}");

    let body = std::fs::read_to_string(reports.join("file_sb_fir.json"))
        .or_else(|_| {
            // File-spec job names embed the path; find the one report.
            let name = std::fs::read_dir(&reports)
                .unwrap()
                .map(|e| e.unwrap().file_name().into_string().unwrap())
                .find(|n| n != "fleet_summary.json")
                .expect("module report written");
            std::fs::read_to_string(reports.join(name))
        })
        .unwrap();
    assert!(body.contains("\"status\": \"certified\""), "{body}");
    assert!(body.contains("\"necessary_fences\": 2"), "{body}");
    assert!(body.contains("\"violation\": null"), "{body}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn certify_off_keeps_reports_certification_free() {
    let out = fenceplace(&["--program", "kernel:Dekker", "--seq"]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"certifications\": 0"), "{text}");
}

#[test]
fn certify_states_budget_is_honored() {
    let dir = scratch("certify-budget");
    let sb = dir.join("sb.fir");
    std::fs::write(&sb, FENCED_SB_IR).unwrap();
    let spec = format!("file:{}", sb.display());
    let reports = dir.join("reports");

    // A 3-state budget cannot finish even one enumeration pass:
    // inconclusive, but never a wrong verdict — and still exit 0.
    let out = fenceplace(&[
        "--program",
        &spec,
        "--config",
        "Manual:x86tso",
        "--certify-states",
        "3",
        "--seq",
        "--out",
        reports.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let name = std::fs::read_dir(&reports)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .find(|n| n != "fleet_summary.json")
        .expect("module report written");
    let body = std::fs::read_to_string(reports.join(name)).unwrap();
    assert!(body.contains("\"status\": \"inconclusive\""), "{body}");
    assert!(body.contains("\"exhausted\": true"), "{body}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn list_exits_zero() {
    let out = fenceplace(&["--list"]);
    assert_eq!(exit_code(&out), 0);
    let text = stdout(&out);
    assert!(text.contains("kernel:Dekker"));
    assert!(text.contains("file:PATH"));
    assert!(text.contains("dir:PATH"));
    assert!(text.contains("pack:PATH"));
}

#[test]
fn streamed_reports_are_byte_identical_to_resident() {
    let dir = scratch("streamed");
    let mods = dir.join("mods");
    std::fs::create_dir_all(&mods).unwrap();
    // Two parseable modules in a directory; the dir: spec resolves them
    // eagerly resident and lazily streamed.
    std::fs::write(mods.join("a.ir"), FENCED_SB_IR).unwrap();
    std::fs::write(
        mods.join("b.ir"),
        FENCED_SB_IR.replacen("module sb", "module sb2", 1),
    )
    .unwrap();
    let spec = format!("dir:{}", mods.display());
    let out_r = dir.join("resident");
    let out_s = dir.join("streamed");

    let resident = fenceplace(&["--program", &spec, "--out", out_r.to_str().unwrap()]);
    assert_eq!(exit_code(&resident), 0, "stderr: {}", stderr(&resident));
    let streamed = fenceplace(&[
        "--program",
        &spec,
        "--stream",
        "--window",
        "2",
        "--out",
        out_s.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&streamed), 0, "stderr: {}", stderr(&streamed));

    // Every per-module report matches byte for byte; only the summary
    // (wall-clock, interner stats, stream block) may differ.
    let mut names: Vec<String> = std::fs::read_dir(&out_r)
        .unwrap()
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n != "fleet_summary.json")
        .collect();
    names.sort();
    assert_eq!(names.len(), 2, "{names:?}");
    for name in &names {
        let r = std::fs::read_to_string(out_r.join(name)).unwrap();
        let s = std::fs::read_to_string(out_s.join(name)).unwrap();
        assert_eq!(r, s, "{name}: streamed report differs from resident");
    }
    let summary = std::fs::read_to_string(out_s.join("fleet_summary.json")).unwrap();
    assert!(summary.contains("\"stream\": {\"window\": 2"), "{summary}");
    assert!(summary.contains("\"peak_resident_modules\""), "{summary}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_stream_load_failure_is_partial_success() {
    let out = fenceplace(&[
        "--stream",
        "--window",
        "2",
        "--program",
        "kernel:Dekker",
        "--program",
        "file:/no/such/module.fir",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"load_failures\": 1"), "{text}");
    assert!(text.contains("\"status\": \"load_failed\""), "{text}");
    assert!(text.contains("\"modules_failed\": 1"), "{text}");
    assert!(stderr(&out).contains("quarantined"));

    // A duplicate spec is likewise quarantined at admission (the lazy
    // stream cannot refuse it up front like the resident path does).
    let out = fenceplace(&[
        "--stream",
        "--program",
        "kernel:Dekker",
        "--program",
        "kernel:Dekker",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("duplicate program"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn streamed_unparsable_text_is_quarantined_as_invalid_ir() {
    let dir = scratch("stream-garbage");
    let bad = dir.join("bad.ir");
    std::fs::write(&bad, "not IR at all\n").unwrap();
    let spec = format!("file:{}", bad.display());

    let out = fenceplace(&["--stream", "--program", "kernel:Dekker", "--program", &spec]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"status\": \"invalid_ir\""), "{text}");
    assert!(text.contains("parse error"), "{text}");
    assert!(text.contains("\"status\": \"ok\""), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}
