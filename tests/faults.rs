//! Deterministic fault-injection matrix over the full evaluation fleet.
//!
//! Requires the `faultinject` feature (`scripts/check.sh faults`, the
//! CI `faults` job):
//!
//! ```text
//! cargo test -q --features faultinject --test faults
//! ```
//!
//! For **every** (module, stage, fault-kind) injection point on the
//! 26-module corpus fleet, the fleet run must complete, the injected
//! module must report the matching non-`Ok` [`ModuleOutcome`], and every
//! *other* module's placement must be bit-identical to the fault-free
//! run — under sequential and pooled scheduling, with identical
//! outcomes in both.
//!
//! Coverage is exhaustive but batched: each run arms one (stage, kind)
//! point on half of the modules (even/odd split), so every module is
//! exercised at every point across two runs per point — and multi-module
//! quarantine within one run is exercised for free.
//!
//! The `Ingest` stage only executes on the streamed ingestion path, so
//! its injections run through `run_fleet_streamed` (windowed admission
//! over the fleet's printed texts) in a second matrix within the same
//! test.

use corpus::{manifest, Params};
use fenceplace::faultinject::{self, Fault};
use fenceplace::{
    run_fleet_opts, run_fleet_streamed, CertifyOptions, FleetJob, FleetOptions, FleetResult,
    FleetStage, FleetStats, ModuleOutcome, PipelineConfig, StreamItem, StreamSummary, Variant,
};

/// Big enough that no tiny-params corpus module ever trips it on its
/// own; far smaller than [`faultinject::BLOWUP_COST`].
const BUDGET: u64 = u64::MAX / 16;

fn injection_points() -> Vec<(FleetStage, Fault)> {
    // The resident fleet never executes the Ingest stage (it exists only
    // on the streamed ingestion path, exercised by
    // `streamed_ingest_matrix` below) — an armed ingest fault would
    // simply never fire here.
    let resident = || {
        FleetStage::ALL
            .iter()
            .copied()
            .filter(|&s| s != FleetStage::Ingest)
    };
    let mut points: Vec<(FleetStage, Fault)> = resident().map(|s| (s, Fault::Panic)).collect();
    points.push((FleetStage::Validate, Fault::TruncateIr));
    points.extend(resident().map(|s| (s, Fault::BudgetBlowup)));
    points
}

fn assert_same_results(name: &str, got: &FleetResult, want: &FleetResult) {
    assert_eq!(got.results.len(), want.results.len(), "{name}");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.points, w.points, "{name}: fence points diverge");
        assert_eq!(
            format!("{:?}", g.report),
            format!("{:?}", w.report),
            "{name}: report diverges"
        );
    }
}

fn assert_outcome_matches(name: &str, stage: FleetStage, fault: Fault, outcome: &ModuleOutcome) {
    match fault {
        Fault::Panic => match outcome {
            ModuleOutcome::Panicked { stage: s, message } => {
                assert_eq!(*s, stage, "{name}: wrong stage");
                assert!(
                    message.contains("faultinject: injected panic"),
                    "{name}: unexpected message {message:?}"
                );
            }
            other => panic!("{name}: expected Panicked at {stage}, got {other:?}"),
        },
        Fault::TruncateIr => match outcome {
            ModuleOutcome::InvalidIr { errors } => {
                assert!(!errors.is_empty(), "{name}: no diagnostics");
            }
            other => panic!("{name}: expected InvalidIr, got {other:?}"),
        },
        Fault::BudgetBlowup => match outcome {
            ModuleOutcome::DeadlineExceeded {
                stage: s,
                spent,
                budget,
            } => {
                assert_eq!(*s, stage, "{name}: wrong stage");
                assert!(spent > budget, "{name}: spent {spent} <= budget {budget}");
            }
            other => panic!("{name}: expected DeadlineExceeded at {stage}, got {other:?}"),
        },
    }
}

/// Silences the default panic hook for the injected panics (hundreds of
/// them across the matrix) while keeping real assertion failures loud.
fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("faultinject: injected panic") {
            prev(info);
        }
    }));
}

/// The whole matrix lives in one `#[test]`: the injection registry is
/// process-global, so concurrent tests would race on it.
#[test]
fn fault_matrix_quarantines_exactly_the_injected_modules() {
    quiet_injected_panics();
    let params = Params::tiny();
    let entries = manifest::full_fleet(&params);
    assert_eq!(entries.len(), 26, "the full evaluation fleet");
    let configs = vec![PipelineConfig::for_variant(Variant::Control)];
    let jobs: Vec<FleetJob<'_>> = entries
        .iter()
        .map(|e| FleetJob::new(e.name.clone(), &e.module, configs.clone()))
        .collect();
    let points = injection_points();

    // (point, half, module) -> outcome kind, for seq/pooled agreement.
    let mut mode_outcomes: Vec<Vec<String>> = Vec::new();

    for parallel in [false, true] {
        // Certification is on (tiny budget) so the `Certify` injection
        // points in `FleetStage::ALL` actually execute; a tiny state
        // budget keeps every run at Inconclusive-at-worst cheaply.
        let opts = FleetOptions {
            parallel,
            budget: Some(BUDGET),
            certify: Some(CertifyOptions {
                max_states: 2_000,
                weak_window: 2,
                max_groups: 2,
            }),
            ..FleetOptions::default()
        };

        faultinject::clear();
        let (baseline, base_stats) = run_fleet_opts(&jobs, &opts);
        assert_eq!(base_stats.failed, 0, "fault-free run is clean");
        for fr in &baseline {
            assert!(fr.outcome.is_ok(), "{}: {:?}", fr.name, fr.outcome);
        }

        let mut outcomes: Vec<String> = Vec::new();
        for &(stage, fault) in &points {
            for half in 0..2usize {
                faultinject::clear();
                let armed: Vec<bool> = (0..jobs.len()).map(|j| j % 2 == half).collect();
                for (j, job) in jobs.iter().enumerate() {
                    if armed[j] {
                        faultinject::arm(&job.name, stage, fault);
                    }
                }
                let (fleet, stats) = run_fleet_opts(&jobs, &opts);
                assert_eq!(
                    stats.failed,
                    armed.iter().filter(|&&a| a).count(),
                    "{stage}/{fault:?} (par={parallel}): failure count"
                );
                for (j, fr) in fleet.iter().enumerate() {
                    let tag = format!("{} at {stage}/{fault:?} (par={parallel})", fr.name);
                    if armed[j] {
                        assert_outcome_matches(&tag, stage, fault, &fr.outcome);
                        assert!(fr.results.is_empty(), "{tag}: quarantined results");
                    } else {
                        assert!(fr.outcome.is_ok(), "{tag}: {:?}", fr.outcome);
                        assert_same_results(&tag, fr, &baseline[j]);
                    }
                    outcomes.push(format!("{:?}", fr.outcome));
                }
            }
        }
        mode_outcomes.push(outcomes);
    }
    faultinject::clear();

    assert_eq!(
        mode_outcomes[0], mode_outcomes[1],
        "sequential and pooled runs must agree on every outcome"
    );

    // The registry is process-global, so the streamed half of the matrix
    // must run inside this same test.
    streamed_ingest_matrix();
}

/// Feeds the fleet as texts through the windowed streamed scheduler,
/// collecting each delivered [`FleetResult`] by admission index.
fn run_streamed_collect(
    texts: &[(String, String)],
    configs: &[PipelineConfig],
    opts: &FleetOptions,
) -> (Vec<StreamSummary>, FleetStats, Vec<FleetResult>) {
    let mut slots: Vec<Option<FleetResult>> = (0..texts.len()).map(|_| None).collect();
    let items: Vec<StreamItem> = texts
        .iter()
        .map(|(name, text)| StreamItem::Text {
            name: name.clone(),
            text: text.clone(),
        })
        .collect();
    let (summaries, stats) = run_fleet_streamed(items, configs, opts, |i, fr| {
        assert!(slots[i].is_none(), "slot {i} delivered twice");
        slots[i] = Some(fr);
    });
    let results = slots
        .into_iter()
        .map(|s| s.expect("every slot delivered"))
        .collect();
    (summaries, stats, results)
}

/// Ingest-stage injections exist only on the streamed path: the fleet's
/// printed texts are fed through [`run_fleet_streamed`] under a small
/// admission window with each ingest fault kind armed on half the
/// modules per run. The injected modules must quarantine with the
/// matching outcome *without stalling the window* — every other module
/// completes with placements bit-identical to the fault-free streamed
/// run — and sequential/pooled runs agree on every outcome.
fn streamed_ingest_matrix() {
    let params = Params::tiny();
    let entries = manifest::full_fleet(&params);
    let configs = vec![PipelineConfig::for_variant(Variant::Control)];
    let texts: Vec<(String, String)> = entries
        .iter()
        .map(|e| (e.name.clone(), fence_ir::printer::print_module(&e.module)))
        .collect();
    let faults = [Fault::Panic, Fault::TruncateIr, Fault::BudgetBlowup];

    let mut mode_outcomes: Vec<Vec<String>> = Vec::new();
    for parallel in [false, true] {
        let opts = FleetOptions {
            parallel,
            budget: Some(BUDGET),
            window: Some(3),
            ..FleetOptions::default()
        };

        faultinject::clear();
        let (_, base_stats, baseline) = run_streamed_collect(&texts, &configs, &opts);
        assert_eq!(base_stats.failed, 0, "fault-free streamed run is clean");

        let mut outcomes: Vec<String> = Vec::new();
        for &fault in &faults {
            for half in 0..2usize {
                faultinject::clear();
                let armed: Vec<bool> = (0..texts.len()).map(|j| j % 2 == half).collect();
                for (j, (name, _)) in texts.iter().enumerate() {
                    if armed[j] {
                        faultinject::arm(name, FleetStage::Ingest, fault);
                    }
                }
                let (summaries, stats, fleet) = run_streamed_collect(&texts, &configs, &opts);
                assert_eq!(
                    stats.failed,
                    armed.iter().filter(|&&a| a).count(),
                    "ingest/{fault:?} (par={parallel}): failure count"
                );
                for (j, fr) in fleet.iter().enumerate() {
                    let tag = format!("{} at ingest/{fault:?} (par={parallel})", fr.name);
                    if armed[j] {
                        assert_outcome_matches(&tag, FleetStage::Ingest, fault, &fr.outcome);
                        assert!(fr.results.is_empty(), "{tag}: quarantined results");
                    } else {
                        assert!(fr.outcome.is_ok(), "{tag}: {:?}", fr.outcome);
                        assert_same_results(&tag, fr, &baseline[j]);
                    }
                    assert_eq!(
                        format!("{:?}", summaries[j].outcome),
                        format!("{:?}", fr.outcome),
                        "{tag}: summary must mirror the delivered outcome"
                    );
                    outcomes.push(format!("{:?}", fr.outcome));
                }
            }
        }
        mode_outcomes.push(outcomes);
    }
    faultinject::clear();

    assert_eq!(
        mode_outcomes[0], mode_outcomes[1],
        "streamed sequential and pooled runs must agree on every ingest outcome"
    );
}
