//! Property test for the function-sharded points-to solver: on randomly
//! generated multi-function modules exercising every cross-shard flow
//! (publishes through the shared global frontier, call-argument and
//! return edges, unknown-address stores, alloc-site publication), the
//! sharded solver — sequential *and* parallel — must produce exactly the
//! sets of the legacy fixpoint-by-re-execution solver
//! ([`fence_bench::naive::seed_points_to`], the preserved seed
//! algorithm).

use corpus::arbitrary::{build_pt, localize_addresses, pt_shape_strategy, PtOp, PtShape};
use fence_analysis::pointsto::{PointsTo, PointsToMode};
use fence_bench::naive::{seed_points_to, SeedPointsTo};
use fence_ir::{Module, Value};
use proptest::prelude::*;

/// Diffs every queryable set of `pt` against the oracle. With
/// `exact: false`, only soundness is required: every oracle set must be
/// *contained* in the solver's (the documented `∅ ⇒ {Unknown}` corner
/// yields strict supersets).
fn assert_matches(m: &Module, pt: &PointsTo, reference: &SeedPointsTo, mode: &str, exact: bool) {
    assert_eq!(pt.num_locs(), reference.loc.len(), "{mode}: location count");
    let check = |got: Vec<usize>, want: Vec<usize>, what: String| {
        if exact {
            assert_eq!(got, want, "{mode}: {what}");
        } else {
            assert!(
                want.iter().all(|l| got.contains(l)),
                "{mode}: {what} lost oracle locations: got {got:?}, oracle {want:?}"
            );
        }
    };
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            check(
                pt.value_set(fid, Value::Inst(iid)).iter().collect(),
                reference.val[fid.index()][iid.index()].iter().collect(),
                format!("{}/%{} value set", func.name, iid.index()),
            );
        }
        for a in 0..func.num_params {
            check(
                pt.value_set(fid, Value::Arg(a)).iter().collect(),
                reference.arg[fid.index()][a as usize].iter().collect(),
                format!("{}/arg{a} set", func.name),
            );
        }
    }
    for l in 0..pt.num_locs() {
        check(
            pt.loc_pts(l).iter().collect(),
            reference.loc[l].iter().collect(),
            format!("loc {l} pointees"),
        );
    }
}

/// Diffs two solver results for exact equality (the sharding property:
/// schedule must not matter).
fn assert_identical(m: &Module, a: &PointsTo, b: &PointsTo) {
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            let ga: Vec<usize> = a.value_set(fid, Value::Inst(iid)).iter().collect();
            let gb: Vec<usize> = b.value_set(fid, Value::Inst(iid)).iter().collect();
            assert_eq!(
                ga,
                gb,
                "{}/%{}: parallel != sequential",
                func.name,
                iid.index()
            );
        }
        for p in 0..func.num_params {
            let ga: Vec<usize> = a.value_set(fid, Value::Arg(p)).iter().collect();
            let gb: Vec<usize> = b.value_set(fid, Value::Arg(p)).iter().collect();
            assert_eq!(ga, gb, "{}/arg{p}: parallel != sequential", func.name);
        }
    }
    for l in 0..a.num_locs() {
        let ga: Vec<usize> = a.loc_pts(l).iter().collect();
        let gb: Vec<usize> = b.loc_pts(l).iter().collect();
        assert_eq!(ga, gb, "loc {l}: parallel != sequential");
    }
}

/// Asserts every queryable set of `small` is contained in `big`'s.
fn assert_superset(m: &Module, big: &PointsTo, small: &PointsTo) {
    let check = |big: Vec<usize>, small: Vec<usize>, what: String| {
        assert!(
            small.iter().all(|l| big.contains(l)),
            "{what}: relaxed lost pinned locations: relaxed {big:?}, pinned {small:?}"
        );
    };
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            check(
                big.value_set(fid, Value::Inst(iid)).iter().collect(),
                small.value_set(fid, Value::Inst(iid)).iter().collect(),
                format!("{}/%{} value set", func.name, iid.index()),
            );
        }
        for a in 0..func.num_params {
            check(
                big.value_set(fid, Value::Arg(a)).iter().collect(),
                small.value_set(fid, Value::Arg(a)).iter().collect(),
                format!("{}/arg{a} set", func.name),
            );
        }
    }
    for l in 0..big.num_locs() {
        check(
            big.loc_pts(l).iter().collect(),
            small.loc_pts(l).iter().collect(),
            format!("loc {l} pointees"),
        );
    }
}

/// Golden: the *default* mode is Pinned, and a default-mode solve — seq
/// and pooled — reproduces the preserved seed algorithm bit-for-bit on
/// a fixed corner-free module exercising every cross-shard flow.
#[test]
fn default_mode_is_the_pinned_seed_replay() {
    assert!(matches!(PointsToMode::default(), PointsToMode::Pinned));
    let shape = PtShape {
        n_globals: 3,
        n_cells: 2,
        funcs: vec![
            (
                vec![
                    PtOp::PublishGlobal(0, 1),
                    PtOp::DerefCell(0),
                    PtOp::Call(1, 2),
                ],
                true,
            ),
            (
                vec![PtOp::PublishAlloc(1, 0), PtOp::LoadArg, PtOp::StoreArg(2)],
                false,
            ),
            (vec![PtOp::LoadGlobal(1), PtOp::DerefCell(1)], true),
        ],
    };
    let m = build_pt(&shape, true);
    assert!(fence_ir::verify_module(&m).is_empty());
    let reference = seed_points_to(&m);
    for parallel in [false, true] {
        let pt = PointsTo::analyze_with(&m, parallel, PointsToMode::default());
        assert_matches(
            &m,
            &pt,
            &reference,
            if parallel {
                "default/pooled"
            } else {
                "default/seq"
            },
            true,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On corner-free modules (see [`build_pt`]), sequential and parallel
    /// sharded solves both equal the legacy whole-module fixpoint
    /// bit-for-bit.
    #[test]
    fn sharded_solve_matches_legacy_fixpoint(shape in pt_shape_strategy()) {
        let m = build_pt(&shape, true);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let seq = PointsTo::analyze(&m);
        assert_matches(&m, &seq, &reference, "sequential", true);
        let par = PointsTo::analyze_on(&m, true);
        assert_matches(&m, &par, &reference, "parallel", true);
    }

    /// On *unrestricted* modules — including ones that hit the documented
    /// `∅ ⇒ {Unknown}` divergence corner — the sharded solve still (a)
    /// never loses a location the legacy fixpoint derives (soundness:
    /// only conservative supersets), and (b) is schedule-independent:
    /// the parallel rounds reproduce the sequential result exactly.
    #[test]
    fn sharded_solve_sound_and_schedule_independent(shape in pt_shape_strategy()) {
        let m = build_pt(&shape, false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let seq = PointsTo::analyze(&m);
        assert_matches(&m, &seq, &reference, "sequential", false);
        let par = PointsTo::analyze_on(&m, true);
        assert_identical(&m, &seq, &par);
    }

    /// On shapes whose address operands all resolve function-locally
    /// (see [`localize_addresses`]), the relaxed sharded initial replay
    /// makes exactly the pinned replay's `∅ ⇒ {Unknown}` decisions, so
    /// `Relaxed` — sequential *and* pooled — equals `Pinned`
    /// bit-for-bit.
    #[test]
    fn relaxed_matches_pinned_on_local_address_shapes(shape in pt_shape_strategy()) {
        let m = build_pt(&localize_addresses(&shape), false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let pinned = PointsTo::analyze(&m);
        let relaxed_seq = PointsTo::analyze_with(&m, false, PointsToMode::Relaxed);
        assert_identical(&m, &pinned, &relaxed_seq);
        let relaxed_par = PointsTo::analyze_with(&m, true, PointsToMode::Relaxed);
        assert_identical(&m, &relaxed_seq, &relaxed_par);
    }

    /// On *unrestricted* shapes the relaxed replay may resolve more
    /// addresses to `{Unknown}` than the pinned one, but it must stay
    /// (a) a sound superset of both the pinned solve and the legacy
    /// fixpoint, and (b) schedule-independent: the pooled relaxed solve
    /// reproduces the sequential one exactly.
    #[test]
    fn relaxed_is_sound_superset_and_schedule_independent(shape in pt_shape_strategy()) {
        let m = build_pt(&shape, false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let pinned = PointsTo::analyze(&m);
        let relaxed_seq = PointsTo::analyze_with(&m, false, PointsToMode::Relaxed);
        assert_superset(&m, &relaxed_seq, &pinned);
        assert_matches(&m, &relaxed_seq, &reference, "relaxed", false);
        let relaxed_par = PointsTo::analyze_with(&m, true, PointsToMode::Relaxed);
        assert_identical(&m, &relaxed_seq, &relaxed_par);
    }
}
