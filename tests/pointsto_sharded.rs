//! Property test for the function-sharded points-to solver: on randomly
//! generated multi-function modules exercising every cross-shard flow
//! (publishes through the shared global frontier, call-argument and
//! return edges, unknown-address stores, alloc-site publication), the
//! sharded solver — sequential *and* parallel — must produce exactly the
//! sets of the legacy fixpoint-by-re-execution solver
//! ([`fence_bench::naive::seed_points_to`], the preserved seed
//! algorithm).

use fence_analysis::pointsto::{PointsTo, PointsToMode};
use fence_bench::naive::{seed_points_to, SeedPointsTo};
use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::{FuncId, Module, Value};
use proptest::prelude::*;

/// One operation in a generated function body.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `store g, const`
    StoreConst(usize),
    /// `load g`
    LoadGlobal(usize),
    /// `store cell, &g` — publish a global's address through the frontier.
    PublishGlobal(usize, usize),
    /// `p = load cell; load p` — pick a published pointer back up.
    DerefCell(usize),
    /// `a = alloc; store cell, a; store a, &g` — publish an alloc site.
    PublishAlloc(usize, usize),
    /// `call f_k(&g)` — pointer flows into another shard's argument.
    Call(usize, usize),
    /// `load arg0` — unknown-address read.
    LoadArg,
    /// `store arg0, &g` — unknown-address write (hits the `Unknown` loc).
    StoreArg(usize),
}

#[derive(Debug, Clone)]
struct Shape {
    n_globals: usize,
    n_cells: usize,
    /// Per function: its ops and whether it returns its last pointer.
    funcs: Vec<(Vec<Op>, bool)>,
}

fn op_strategy(n_globals: usize, n_cells: usize, n_funcs: usize) -> impl Strategy<Value = Op> {
    (
        0usize..8,
        0usize..n_globals,
        0usize..n_cells,
        0usize..n_funcs,
    )
        .prop_map(move |(sel, g, c, f)| match sel {
            0 => Op::StoreConst(g),
            1 => Op::LoadGlobal(g),
            2 => Op::PublishGlobal(c, g),
            3 => Op::DerefCell(c),
            4 => Op::PublishAlloc(c, g),
            5 => Op::Call(f, g),
            6 => Op::LoadArg,
            _ => Op::StoreArg(g),
        })
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (2usize..5, 1usize..3, 2usize..5).prop_flat_map(|(n_globals, n_cells, n_funcs)| {
        proptest::collection::vec(
            (
                proptest::collection::vec(op_strategy(n_globals, n_cells, n_funcs), 1..10),
                any::<bool>(),
            ),
            n_funcs..n_funcs + 1,
        )
        .prop_map(move |funcs| Shape {
            n_globals,
            n_cells,
            funcs,
        })
    })
}

/// Builds the module. With `corner_free`, the generated program avoids
/// the solver's one documented divergence from the legacy re-execution
/// fixpoint (an address set that is empty when its constraint is first
/// visited but non-empty later): function 0 pre-publishes every cell and
/// pre-calls every other function, and calls only ever target
/// later-defined functions — so every address a constraint resolves is
/// already in its final emptiness state at visit time, and the solvers
/// agree bit-for-bit.
fn build(shape: &Shape, corner_free: bool) -> Module {
    let mut mb = ModuleBuilder::new("sharded");
    let globals: Vec<_> = (0..shape.n_globals)
        .map(|i| mb.global(format!("g{i}"), 1))
        .collect();
    let cells: Vec<_> = (0..shape.n_cells)
        .map(|i| mb.global(format!("cell{i}"), 1))
        .collect();
    // Declare every function first so calls can target any shard,
    // including later-defined and self-recursive ones.
    let fids: Vec<FuncId> = (0..shape.funcs.len())
        .map(|i| mb.declare_func(format!("f{i}"), 1))
        .collect();
    for (i, (ops, ret_ptr)) in shape.funcs.iter().enumerate() {
        let mut fb = FunctionBuilder::new(format!("f{i}"), 1);
        let mut last_ptr: Option<Value> = None;
        if corner_free && i == 0 {
            for (c, &cell) in cells.iter().enumerate() {
                fb.store(cell, globals[c % globals.len()]);
            }
            for &callee in &fids[1..] {
                let _ = fb.call(callee, vec![Value::Global(globals[0])]);
            }
        }
        for op in ops {
            let op = if corner_free {
                match *op {
                    // Forward calls only; the last function substitutes a
                    // plain load.
                    Op::Call(f, g) if f <= i => {
                        if i + 1 < fids.len() {
                            Op::Call(i + 1 + (f % (fids.len() - i - 1)), g)
                        } else {
                            Op::LoadGlobal(g)
                        }
                    }
                    o => o,
                }
            } else {
                *op
            };
            match op {
                Op::StoreConst(g) => fb.store(globals[g], 7i64),
                Op::LoadGlobal(g) => {
                    let _ = fb.load(globals[g]);
                }
                Op::PublishGlobal(c, g) => fb.store(cells[c], globals[g]),
                Op::DerefCell(c) => {
                    let p = fb.load(cells[c]);
                    let _ = fb.load(p);
                    last_ptr = Some(p);
                }
                Op::PublishAlloc(c, g) => {
                    let a = fb.alloc(2i64);
                    fb.store(cells[c], a);
                    fb.store(a, globals[g]);
                    last_ptr = Some(a);
                }
                Op::Call(f, g) => {
                    let r = fb.call(fids[f], vec![Value::Global(globals[g])]);
                    last_ptr = Some(r);
                }
                Op::LoadArg => {
                    let _ = fb.load(Value::Arg(0));
                }
                Op::StoreArg(g) => fb.store(Value::Arg(0), globals[g]),
            }
        }
        fb.ret(if *ret_ptr { last_ptr } else { None });
        mb.define_func(fids[i], fb.build());
    }
    mb.finish()
}

/// Diffs every queryable set of `pt` against the oracle. With
/// `exact: false`, only soundness is required: every oracle set must be
/// *contained* in the solver's (the documented `∅ ⇒ {Unknown}` corner
/// yields strict supersets).
fn assert_matches(m: &Module, pt: &PointsTo, reference: &SeedPointsTo, mode: &str, exact: bool) {
    assert_eq!(pt.num_locs(), reference.loc.len(), "{mode}: location count");
    let check = |got: Vec<usize>, want: Vec<usize>, what: String| {
        if exact {
            assert_eq!(got, want, "{mode}: {what}");
        } else {
            assert!(
                want.iter().all(|l| got.contains(l)),
                "{mode}: {what} lost oracle locations: got {got:?}, oracle {want:?}"
            );
        }
    };
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            check(
                pt.value_set(fid, Value::Inst(iid)).iter().collect(),
                reference.val[fid.index()][iid.index()].iter().collect(),
                format!("{}/%{} value set", func.name, iid.index()),
            );
        }
        for a in 0..func.num_params {
            check(
                pt.value_set(fid, Value::Arg(a)).iter().collect(),
                reference.arg[fid.index()][a as usize].iter().collect(),
                format!("{}/arg{a} set", func.name),
            );
        }
    }
    for l in 0..pt.num_locs() {
        check(
            pt.loc_pts(l).iter().collect(),
            reference.loc[l].iter().collect(),
            format!("loc {l} pointees"),
        );
    }
}

/// Diffs two solver results for exact equality (the sharding property:
/// schedule must not matter).
fn assert_identical(m: &Module, a: &PointsTo, b: &PointsTo) {
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            let ga: Vec<usize> = a.value_set(fid, Value::Inst(iid)).iter().collect();
            let gb: Vec<usize> = b.value_set(fid, Value::Inst(iid)).iter().collect();
            assert_eq!(
                ga,
                gb,
                "{}/%{}: parallel != sequential",
                func.name,
                iid.index()
            );
        }
        for p in 0..func.num_params {
            let ga: Vec<usize> = a.value_set(fid, Value::Arg(p)).iter().collect();
            let gb: Vec<usize> = b.value_set(fid, Value::Arg(p)).iter().collect();
            assert_eq!(ga, gb, "{}/arg{p}: parallel != sequential", func.name);
        }
    }
    for l in 0..a.num_locs() {
        let ga: Vec<usize> = a.loc_pts(l).iter().collect();
        let gb: Vec<usize> = b.loc_pts(l).iter().collect();
        assert_eq!(ga, gb, "loc {l}: parallel != sequential");
    }
}

/// Rewrites a shape so every *address* operand resolves function-locally
/// (globals and same-function alloc results) — the documented condition
/// under which the relaxed initial replay's local view has the same
/// emptiness state as the pinned in-round view at every resolution, so
/// `PointsToMode::Relaxed` and `Pinned` must agree bit-for-bit.
fn localize_addresses(shape: &Shape) -> Shape {
    let mut s = shape.clone();
    for (ops, _) in &mut s.funcs {
        for op in ops.iter_mut() {
            *op = match *op {
                // Dereferencing a picked-up pointer or an argument
                // resolves a node whose local view may be emptier than
                // the pinned one — substitute global-addressed ops.
                Op::DerefCell(_) | Op::LoadArg => Op::LoadGlobal(0),
                Op::StoreArg(g) => Op::StoreConst(g),
                o => o,
            };
        }
    }
    s
}

/// Asserts every queryable set of `small` is contained in `big`'s.
fn assert_superset(m: &Module, big: &PointsTo, small: &PointsTo) {
    let check = |big: Vec<usize>, small: Vec<usize>, what: String| {
        assert!(
            small.iter().all(|l| big.contains(l)),
            "{what}: relaxed lost pinned locations: relaxed {big:?}, pinned {small:?}"
        );
    };
    for (fid, func) in m.iter_funcs() {
        for (iid, _) in func.iter_insts() {
            check(
                big.value_set(fid, Value::Inst(iid)).iter().collect(),
                small.value_set(fid, Value::Inst(iid)).iter().collect(),
                format!("{}/%{} value set", func.name, iid.index()),
            );
        }
        for a in 0..func.num_params {
            check(
                big.value_set(fid, Value::Arg(a)).iter().collect(),
                small.value_set(fid, Value::Arg(a)).iter().collect(),
                format!("{}/arg{a} set", func.name),
            );
        }
    }
    for l in 0..big.num_locs() {
        check(
            big.loc_pts(l).iter().collect(),
            small.loc_pts(l).iter().collect(),
            format!("loc {l} pointees"),
        );
    }
}

/// Golden: the *default* mode is Pinned, and a default-mode solve — seq
/// and pooled — reproduces the preserved seed algorithm bit-for-bit on
/// a fixed corner-free module exercising every cross-shard flow.
#[test]
fn default_mode_is_the_pinned_seed_replay() {
    assert!(matches!(PointsToMode::default(), PointsToMode::Pinned));
    let shape = Shape {
        n_globals: 3,
        n_cells: 2,
        funcs: vec![
            (
                vec![Op::PublishGlobal(0, 1), Op::DerefCell(0), Op::Call(1, 2)],
                true,
            ),
            (
                vec![Op::PublishAlloc(1, 0), Op::LoadArg, Op::StoreArg(2)],
                false,
            ),
            (vec![Op::LoadGlobal(1), Op::DerefCell(1)], true),
        ],
    };
    let m = build(&shape, true);
    assert!(fence_ir::verify_module(&m).is_empty());
    let reference = seed_points_to(&m);
    for parallel in [false, true] {
        let pt = PointsTo::analyze_with(&m, parallel, PointsToMode::default());
        assert_matches(
            &m,
            &pt,
            &reference,
            if parallel {
                "default/pooled"
            } else {
                "default/seq"
            },
            true,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On corner-free modules (see [`build`]), sequential and parallel
    /// sharded solves both equal the legacy whole-module fixpoint
    /// bit-for-bit.
    #[test]
    fn sharded_solve_matches_legacy_fixpoint(shape in shape_strategy()) {
        let m = build(&shape, true);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let seq = PointsTo::analyze(&m);
        assert_matches(&m, &seq, &reference, "sequential", true);
        let par = PointsTo::analyze_on(&m, true);
        assert_matches(&m, &par, &reference, "parallel", true);
    }

    /// On *unrestricted* modules — including ones that hit the documented
    /// `∅ ⇒ {Unknown}` divergence corner — the sharded solve still (a)
    /// never loses a location the legacy fixpoint derives (soundness:
    /// only conservative supersets), and (b) is schedule-independent:
    /// the parallel rounds reproduce the sequential result exactly.
    #[test]
    fn sharded_solve_sound_and_schedule_independent(shape in shape_strategy()) {
        let m = build(&shape, false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let seq = PointsTo::analyze(&m);
        assert_matches(&m, &seq, &reference, "sequential", false);
        let par = PointsTo::analyze_on(&m, true);
        assert_identical(&m, &seq, &par);
    }

    /// On shapes whose address operands all resolve function-locally
    /// (see [`localize_addresses`]), the relaxed sharded initial replay
    /// makes exactly the pinned replay's `∅ ⇒ {Unknown}` decisions, so
    /// `Relaxed` — sequential *and* pooled — equals `Pinned`
    /// bit-for-bit.
    #[test]
    fn relaxed_matches_pinned_on_local_address_shapes(shape in shape_strategy()) {
        let m = build(&localize_addresses(&shape), false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let pinned = PointsTo::analyze(&m);
        let relaxed_seq = PointsTo::analyze_with(&m, false, PointsToMode::Relaxed);
        assert_identical(&m, &pinned, &relaxed_seq);
        let relaxed_par = PointsTo::analyze_with(&m, true, PointsToMode::Relaxed);
        assert_identical(&m, &relaxed_seq, &relaxed_par);
    }

    /// On *unrestricted* shapes the relaxed replay may resolve more
    /// addresses to `{Unknown}` than the pinned one, but it must stay
    /// (a) a sound superset of both the pinned solve and the legacy
    /// fixpoint, and (b) schedule-independent: the pooled relaxed solve
    /// reproduces the sequential one exactly.
    #[test]
    fn relaxed_is_sound_superset_and_schedule_independent(shape in shape_strategy()) {
        let m = build(&shape, false);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        let reference = seed_points_to(&m);
        let pinned = PointsTo::analyze(&m);
        let relaxed_seq = PointsTo::analyze_with(&m, false, PointsToMode::Relaxed);
        assert_superset(&m, &relaxed_seq, &pinned);
        assert_matches(&m, &relaxed_seq, &reference, "relaxed", false);
        let relaxed_par = PointsTo::analyze_with(&m, true, PointsToMode::Relaxed);
        assert_identical(&m, &relaxed_seq, &relaxed_par);
    }
}
