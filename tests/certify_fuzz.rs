//! Differential fuzzing of the place→certify loop on the generated sync
//! corpus (`corpus::arbitrary`): every generated litmus-shaped module is
//! swept through the pipeline and the bounded model checker must certify
//! the result — soundness (race-free groups stay SC-equal) always,
//! minimality strictly under TSO where the placement's fences are the
//! w→r kind the litmus view can observe.
//!
//! The loop must also *fail* when sabotaged: seeded mutations that
//! weaken a placed fence (runtime-equivalent to deleting it) have to
//! come back [`CertifyStatus::Unsound`], and the failing module is
//! shrunk to a minimal litmus-shaped repro that round-trips through the
//! textual IR printer and parser.

use corpus::arbitrary::{build_sync, shrink_sync, sync_shape_strategy, SyncIdiom, SyncShape};
use fenceplace::{
    certify, run_pipeline, sync_classification, CertifyOptions, CertifyStatus, PipelineConfig,
    TargetModel, Variant,
};
use memsim::check::{full_fence_sites, is_entry_fence, weaken_fence};
use memsim::{detect_races, MemMode, SimConfig, Simulator, ThreadSpec};
use proptest::prelude::*;

fn config(target: TargetModel) -> PipelineConfig {
    PipelineConfig {
        variant: Variant::Control,
        target,
        parallel: false,
    }
}

/// Runs place→certify for `shape` against `target`.
fn place_and_certify(shape: &SyncShape, target: TargetModel) -> fenceplace::CertifyReport {
    let m = build_sync(shape);
    let result = run_pipeline(&m, &config(target));
    certify(
        &result,
        Variant::Control,
        target,
        &CertifyOptions::default(),
    )
}

/// Weakens every non-entry placed full fence and re-certifies; `None`
/// when the placement put down nothing to sabotage.
fn certify_weakened(shape: &SyncShape, target: TargetModel) -> Option<CertifyStatus> {
    let m = build_sync(shape);
    let mut result = run_pipeline(&m, &config(target));
    let fids: Vec<_> = result.module.iter_funcs().map(|(f, _)| f).collect();
    let sites: Vec<_> = full_fence_sites(&result.module, &fids)
        .into_iter()
        .filter(|s| !is_entry_fence(result.module.func(s.func), s.inst))
        .collect();
    if sites.is_empty() {
        return None;
    }
    for site in sites {
        result.module = weaken_fence(&result.module, site);
    }
    let report = certify(
        &result,
        Variant::Control,
        target,
        &CertifyOptions::default(),
    );
    Some(report.status())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential sweep: whatever the generator produces, the
    /// pipeline's own placement certifies. Under TSO the verdict is
    /// fully `Certified` (sound and every non-entry fence necessary);
    /// under the no-speculation weak machine a post-acquire fence can be
    /// made redundant by the branch itself, so `NotMinimal` is accepted
    /// there — unsoundness and budget exhaustion never are.
    #[test]
    fn generated_sync_corpus_certifies(shape in sync_shape_strategy()) {
        let m = build_sync(&shape);
        prop_assert!(fence_ir::verify_module(&m).is_empty(), "module verifies");
        for target in [TargetModel::X86Tso, TargetModel::Weak] {
            let report = place_and_certify(&shape, target);
            prop_assert!(!report.exhausted, "{target:?}: budget exhausted");
            prop_assert!(!report.groups.is_empty(), "{target:?}: no thread groups");
            for g in &report.groups {
                prop_assert!(
                    g.sound,
                    "{target:?}: group {:?} unsound, witness {:?}",
                    g.threads,
                    g.violation
                );
            }
            let status = report.status();
            if target == TargetModel::X86Tso {
                prop_assert_eq!(status, CertifyStatus::Certified, "{:?}", report);
            } else {
                prop_assert!(
                    matches!(status, CertifyStatus::Certified | CertifyStatus::NotMinimal),
                    "{:?}: {:?}",
                    target,
                    report
                );
            }
        }
    }

    /// The paper's DRF hypothesis holds on the generated corpus: with
    /// acquires taken from the pipeline's *detected* sync reads (and
    /// releases from the escaping writes), an SC execution of each
    /// module's thread pair is data-race-free.
    #[test]
    fn generated_sync_corpus_is_race_free_under_detected_acquires(
        shape in sync_shape_strategy()
    ) {
        let m = build_sync(&shape);
        let class = sync_classification(&m, Variant::AddressControl);
        let sim = Simulator::with_config(
            &m,
            SimConfig {
                mode: MemMode::Sc,
                record_trace: true,
                step_limit: 100_000,
                ..Default::default()
            },
        );
        let specs: Vec<ThreadSpec> = m
            .iter_funcs()
            .map(|(f, _)| ThreadSpec { func: f, args: Vec::new() })
            .collect();
        let result = sim.run(&specs);
        prop_assert!(result.is_ok(), "SC run failed: {:?}", result.err());
        let races = detect_races(&m, &result.unwrap().trace, specs.len(), &class);
        prop_assert!(
            races.is_race_free(),
            "detected-acquire classification leaves races: {:?}",
            races
        );
    }
}

/// Seeded sabotage: weakening the placed fences of a store-buffering
/// module must be refuted as `Unsound`, the counterexample shrinks to
/// the minimal shape, and the shrunk repro prints as parseable textual
/// IR that still verifies.
#[test]
fn weakened_fences_are_refuted_with_shrunk_repro() {
    let seed = SyncShape {
        idiom: SyncIdiom::StoreBuffering,
        n_data: 3,
        consts: vec![41, 42, 43],
        pad_ops: 2,
    };
    let fails =
        |s: &SyncShape| certify_weakened(s, TargetModel::X86Tso) == Some(CertifyStatus::Unsound);
    assert!(fails(&seed), "sabotaged seed must certify as unsound");

    let small = shrink_sync(&seed, fails);
    assert!(fails(&small));
    assert_eq!(small.pad_ops, 0, "shrinker strips padding");
    assert_eq!(small.consts, vec![1], "shrinker minimizes constants");

    // Reconstruct the shrunk sabotaged module and round-trip it.
    let m = build_sync(&small);
    let mut result = run_pipeline(&m, &config(TargetModel::X86Tso));
    let fids: Vec<_> = result.module.iter_funcs().map(|(f, _)| f).collect();
    for site in full_fence_sites(&result.module, &fids) {
        if !is_entry_fence(result.module.func(site.func), site.inst) {
            result.module = weaken_fence(&result.module, site);
        }
    }
    let text = fence_ir::printer::print_module(&result.module);
    eprintln!("minimal unsound repro:\n{text}");
    let reparsed = fence_ir::parser::parse_module(&text).expect("repro parses");
    assert!(fence_ir::verify_module(&reparsed).is_empty());
    assert!(
        text.contains("fence compiler"),
        "repro records the weakened fence: {text}"
    );
    // The re-parsed module certifies identically: the repro is faithful.
    let report = fenceplace::certify_module(
        &reparsed,
        &sync_classification(&reparsed, Variant::Control),
        TargetModel::X86Tso,
        &CertifyOptions::default(),
    );
    assert_eq!(report.status(), CertifyStatus::Unsound);
    assert!(report.first_violation().is_some());
}

/// The weak machine catches a weakened message-passing placement too:
/// the producer-side payload→flag fence is the one thing keeping the
/// consumer from reading a stale payload.
#[test]
fn weakened_mp_fence_is_refuted_under_weak() {
    let shape = SyncShape {
        idiom: SyncIdiom::MessagePassing,
        n_data: 2,
        consts: vec![5, 6],
        pad_ops: 0,
    };
    assert_eq!(
        certify_weakened(&shape, TargetModel::Weak),
        Some(CertifyStatus::Unsound)
    );
}
