//! Integration: the whole corpus through the whole pipeline — analysis
//! monotonicity, instrumented execution correctness, and race-freedom of
//! the detected classification.

use corpus::{Params, Program};
use fence_analysis::ModuleAnalysis;
use fenceplace::acquire::{detect_acquires, DetectMode};
use fenceplace::{run_pipeline, PipelineConfig, Variant};
use memsim::{detect_races, MemMode, SimConfig, Simulator, SyncClassification};

#[test]
fn every_program_runs_correctly_under_every_placement() {
    let p = Params::tiny();
    for prog in corpus::programs(&p) {
        for variant in [Variant::Pensieve, Variant::AddressControl, Variant::Control] {
            let placed = run_pipeline(&prog.module, &PipelineConfig::for_variant(variant));
            assert!(
                fence_ir::verify_module(&placed.module).is_empty(),
                "{} instrumented under {variant:?} verifies",
                prog.name
            );
            let sim = Simulator::new(&placed.module);
            let r = sim
                .run(&prog.threads)
                .unwrap_or_else(|e| panic!("{} under {variant:?}: {e}", prog.name));
            if let Some(check) = prog.check {
                check(&r, &placed.module, &prog.params)
                    .unwrap_or_else(|e| panic!("{} under {variant:?}: {e}", prog.name));
            }
        }
    }
}

#[test]
fn manual_builds_run_correctly() {
    let p = Params::tiny();
    for prog in corpus::programs(&p) {
        let sim = Simulator::new(&prog.manual_module);
        let r = sim
            .run(&prog.threads)
            .unwrap_or_else(|e| panic!("{} manual: {e}", prog.name));
        if let Some(check) = prog.check {
            check(&r, &prog.manual_module, &prog.params)
                .unwrap_or_else(|e| panic!("{} manual: {e}", prog.name));
        }
        assert_eq!(
            Program::count_manual_fences(&prog.manual_module),
            prog.manual_full_fences,
            "{}",
            prog.name
        );
    }
}

#[test]
fn detection_is_monotone_across_corpus() {
    let p = Params::tiny();
    for prog in corpus::programs(&p) {
        let an = ModuleAnalysis::run(&prog.module);
        for (fid, func) in prog.module.iter_funcs() {
            let ctrl = detect_acquires(
                &prog.module,
                &an.points_to,
                &an.escape,
                fid,
                DetectMode::Control,
            );
            let both = detect_acquires(
                &prog.module,
                &an.points_to,
                &an.escape,
                fid,
                DetectMode::AddressControl,
            );
            for i in ctrl.sync_reads.iter() {
                assert!(
                    both.sync_reads.contains(i),
                    "{}::{}: Control ⊆ A+C",
                    prog.name,
                    func.name
                );
            }
            for i in both.sync_reads.iter() {
                assert!(
                    an.escape.is_escaping(fid, fence_ir::InstId::new(i)),
                    "{}::{}: acquires are escaping reads",
                    prog.name,
                    func.name
                );
            }
        }
    }
}

/// The detected classification makes the flag-synchronized programs race
/// free under the vector-clock detector: acquires = detected sync reads,
/// releases = their potential writers.
#[test]
fn detected_classification_is_race_free_on_fmm() {
    let p = Params::tiny();
    let progs = corpus::programs(&p);
    let prog = progs.iter().find(|p| p.name == "FMM").expect("FMM");
    let an = ModuleAnalysis::run(&prog.module);

    let mut class = SyncClassification::new();
    for (fid, _) in prog.module.iter_funcs() {
        let info = detect_acquires(
            &prog.module,
            &an.points_to,
            &an.escape,
            fid,
            DetectMode::AddressControl,
        );
        let oracle = fence_analysis::AliasOracle::new(&prog.module, &an.points_to, fid);
        for iid in info.sync_read_ids() {
            class.add_acquire(fid, iid);
            // Releases: the stores that may have written the value the
            // acquire read (the paper's conservative release side,
            // narrowed by may-alias).
            for w in oracle.potential_writers(iid) {
                class.add_release(fid, w);
            }
        }
    }

    let sim = Simulator::with_config(
        &prog.module,
        SimConfig {
            mode: MemMode::Sc,
            record_trace: true,
            ..Default::default()
        },
    );
    let r = sim.run(&prog.threads).expect("runs");
    let report = detect_races(&prog.module, &r.trace, prog.threads.len(), &class);
    assert!(
        report.is_race_free(),
        "FMM with detected acquires shows races: {:?}",
        &report.races[..report.races.len().min(3)]
    );
}

/// Dropping the detected acquires re-exposes the data races — the
/// classification is doing real work.
#[test]
fn empty_classification_shows_races_on_fmm() {
    let p = Params::tiny();
    let progs = corpus::programs(&p);
    let prog = progs.iter().find(|p| p.name == "FMM").expect("FMM");
    let sim = Simulator::with_config(
        &prog.module,
        SimConfig {
            mode: MemMode::Sc,
            record_trace: true,
            ..Default::default()
        },
    );
    let r = sim.run(&prog.threads).expect("runs");
    let report = detect_races(
        &prog.module,
        &r.trace,
        prog.threads.len(),
        &SyncClassification::new(),
    );
    assert!(
        !report.is_race_free(),
        "FMM's flag synchronization must race without classification"
    );
}

/// Printer/parser round-trip over every corpus module (both builds).
/// One parse normalizes instruction labels to appearance order; after
/// that, print∘parse must be a fixpoint, and the reparsed module must
/// verify.
#[test]
fn corpus_ir_text_roundtrip() {
    let p = Params::tiny();
    let mut modules: Vec<(String, fence_ir::Module)> = Vec::new();
    for prog in corpus::programs(&p) {
        modules.push((prog.name.to_string(), prog.module.clone()));
        modules.push((
            format!("{} (manual)", prog.name),
            prog.manual_module.clone(),
        ));
    }
    for k in corpus::kernels::all() {
        modules.push((k.name.to_string(), k.module));
    }
    for (name, m) in modules {
        let text = fence_ir::printer::print_module(&m);
        let normalized =
            fence_ir::parser::parse_module(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            fence_ir::verify_module(&normalized).is_empty(),
            "{name} reparsed module verifies"
        );
        let text1 = fence_ir::printer::print_module(&normalized);
        let reparsed =
            fence_ir::parser::parse_module(&text1).unwrap_or_else(|e| panic!("{name} (2nd): {e}"));
        let text2 = fence_ir::printer::print_module(&reparsed);
        assert_eq!(text1, text2, "{name} normalized round-trip fixpoint");
    }
}

/// The pipeline run on a *reparsed* module gives identical fence counts —
/// the analyses depend only on IR semantics, not construction history.
#[test]
fn pipeline_invariant_under_reparse() {
    let p = Params::tiny();
    for prog in corpus::programs(&p).iter().take(5) {
        let text = fence_ir::printer::print_module(&prog.module);
        let reparsed = fence_ir::parser::parse_module(&text).expect("parses");
        for variant in [Variant::Pensieve, Variant::Control] {
            let a = run_pipeline(&prog.module, &PipelineConfig::for_variant(variant));
            let b = run_pipeline(&reparsed, &PipelineConfig::for_variant(variant));
            assert_eq!(
                a.report.full_fences(),
                b.report.full_fences(),
                "{} under {variant:?}",
                prog.name
            );
            assert_eq!(a.report.total_kept(), b.report.total_kept());
        }
    }
}
