//! Property test: `parse_module` is total on arbitrary mutations of
//! well-formed printed IR — it returns `Ok` or a `ParseError` carrying a
//! plausible line number, and never panics, however the text is mangled.
//!
//! Mutations model realistic corruption of `file:` specs: truncated
//! writes, dropped/duplicated/swapped lines, and byte splices (snapped
//! to char boundaries so the input stays valid UTF-8).

use proptest::prelude::*;

/// One text mutation, decoded from three raw numbers so the strategy
/// stays a plain tuple vector.
#[derive(Debug)]
enum Mutation {
    /// Cut the text at a byte offset.
    Truncate(usize),
    /// Remove one line.
    DeleteLine(usize),
    /// Repeat one line in place.
    DuplicateLine(usize),
    /// Exchange two lines.
    SwapLines(usize, usize),
    /// Insert a printable fragment at a byte offset.
    Splice(usize, u64),
    /// Overwrite one char with another printable char.
    Replace(usize, u64),
}

fn decode(op: u32, a: u64, b: u64) -> Mutation {
    match op % 6 {
        0 => Mutation::Truncate(a as usize),
        1 => Mutation::DeleteLine(a as usize),
        2 => Mutation::DuplicateLine(a as usize),
        3 => Mutation::SwapLines(a as usize, b as usize),
        4 => Mutation::Splice(a as usize, b),
        _ => Mutation::Replace(a as usize, b),
    }
}

/// Snaps `pos` (mod len+1) to the nearest char boundary at or below it.
fn snap(text: &str, pos: usize) -> usize {
    let mut p = pos % (text.len() + 1);
    while !text.is_char_boundary(p) {
        p -= 1;
    }
    p
}

/// Printable fragments a splice can inject — parser-adjacent tokens mixed
/// with junk, so mutations hit both "almost valid" and "nonsense" text.
const FRAGMENTS: [&str; 12] = [
    "bb",
    "%",
    "@",
    "fn ",
    "}",
    "{",
    ";",
    ":",
    "store ",
    "bb999999999",
    "\u{00e9}\u{2603}",
    "0x",
];

fn apply(text: &mut String, m: &Mutation) {
    match *m {
        Mutation::Truncate(pos) => {
            let p = snap(text, pos);
            text.truncate(p);
        }
        Mutation::DeleteLine(i) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return;
            }
            let i = i % lines.len();
            lines.remove(i);
            *text = lines.join("\n");
            text.push('\n');
        }
        Mutation::DuplicateLine(i) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.is_empty() {
                return;
            }
            let i = i % lines.len();
            lines.insert(i, lines[i]);
            *text = lines.join("\n");
            text.push('\n');
        }
        Mutation::SwapLines(i, j) => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() < 2 {
                return;
            }
            let (i, j) = (i % lines.len(), j % lines.len());
            lines.swap(i, j);
            *text = lines.join("\n");
            text.push('\n');
        }
        Mutation::Splice(pos, pick) => {
            let p = snap(text, pos);
            text.insert_str(p, FRAGMENTS[(pick % FRAGMENTS.len() as u64) as usize]);
        }
        Mutation::Replace(pos, pick) => {
            let p = snap(text, pos);
            if p >= text.len() {
                return;
            }
            let c = text[p..].chars().next().unwrap();
            let replacement = (b' ' + (pick % 95) as u8) as char;
            text.replace_range(p..p + c.len_utf8(), &replacement.to_string());
        }
    }
}

/// Printed forms of the seed modules mutations start from: four kernels
/// plus one module from each `corpus::arbitrary` generator family, so
/// mutations also exercise generated-shape text (branches with locals,
/// call/alloc pointer flows).
fn seeds() -> Vec<String> {
    let p = corpus::Params::tiny();
    let mut out: Vec<String> = [
        "kernel:Dekker",
        "kernel:Peterson",
        "kernel:Lamport",
        "kernel:CLH Lock",
    ]
    .iter()
    .map(|spec| {
        let entries = corpus::resolve_spec(spec, &p).expect("seed spec resolves");
        fence_ir::printer::print_module(&entries[0].module)
    })
    .collect();
    let mut rng = proptest::TestRng::from_seed(0x5eed);
    let sync = corpus::arbitrary::sync_shape_strategy().new_value(&mut rng);
    out.push(fence_ir::printer::print_module(
        &corpus::arbitrary::build_sync(&sync),
    ));
    let pt = corpus::arbitrary::pt_shape_strategy().new_value(&mut rng);
    out.push(fence_ir::printer::print_module(
        &corpus::arbitrary::build_pt(&pt, false),
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// However we mangle printed IR, the parser never panics: it returns
    /// `Ok` or a `ParseError` whose line number points into the text.
    #[test]
    fn parse_module_is_total_under_mutation(
        input in (
            0usize..6,
            proptest::collection::vec((0u32..6, any::<u64>(), any::<u64>()), 1..8),
        )
    ) {
        let (seed_idx, raw_mutations) = input;
        let seeds = seeds();
        let mut text = seeds[seed_idx].clone();
        for (op, a, b) in &raw_mutations {
            apply(&mut text, &decode(*op, *a, *b));
        }
        match fence_ir::parser::parse_module(&text) {
            Ok(module) => {
                // Whatever parsed must at least survive re-printing
                // (the printer indexes blocks/insts the parser built).
                let _ = fence_ir::printer::print_module(&module);
            }
            Err(e) => {
                let max_line = text.lines().count().max(1);
                prop_assert!(
                    e.line >= 1 && e.line <= max_line,
                    "error line {} outside 1..={} for error `{}`",
                    e.line,
                    max_line,
                    e
                );
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    /// Splitting a concatenation of printed seed modules recovers each
    /// module's text: every chunk parses, and chunk-by-chunk parsing is
    /// equivalent to parsing each module individually (the streamed
    /// `pack:` ingestion path ≡ the per-file path).
    #[test]
    fn split_then_parse_equals_parse_individually(
        picks in proptest::collection::vec(0usize..6, 1..6)
    ) {
        let seeds = seeds();
        let mut pack = String::new();
        for &i in &picks {
            pack.push_str(&seeds[i]);
        }
        let chunks = corpus::split_corpus(&pack);
        prop_assert_eq!(chunks.len(), picks.len(), "one chunk per module");
        for (chunk, &i) in chunks.iter().zip(&picks) {
            let from_chunk = fence_ir::parser::parse_module(chunk)
                .expect("chunk of well-formed pack parses");
            let individually = fence_ir::parser::parse_module(&seeds[i]).unwrap();
            prop_assert_eq!(
                fence_ir::printer::print_module(&from_chunk),
                fence_ir::printer::print_module(&individually),
                "chunk {} diverges from its source module", i
            );
        }
    }

    /// The splitter is total on arbitrary mutations of a pack: it never
    /// panics, never loses bytes outside line endings — every chunk's
    /// lines appear in the input in order — and mis-split chunks merely
    /// fail to parse (the streamed path quarantines them).
    #[test]
    fn splitter_is_total_under_mutation(
        input in (
            proptest::collection::vec(0usize..6, 1..4),
            proptest::collection::vec((0u32..6, any::<u64>(), any::<u64>()), 1..8),
        )
    ) {
        let (picks, raw_mutations) = input;
        let seeds = seeds();
        let mut pack = String::new();
        for &i in &picks {
            pack.push_str(&seeds[i]);
        }
        for (op, a, b) in &raw_mutations {
            apply(&mut pack, &decode(*op, *a, *b));
        }
        let chunks = corpus::split_corpus(&pack);
        // Conservation: as long as any content line survived the
        // mutations, the chunks' lines are exactly the input's lines in
        // order. (A pack of only blank/comment lines yields no chunks.)
        let has_content = pack.lines().any(|l| {
            let code = l.split(';').next().unwrap_or("");
            code.split_whitespace().next().is_some()
        });
        let rejoined: Vec<&str> = chunks.iter().flat_map(|c| c.lines()).collect();
        if has_content {
            let original: Vec<&str> = pack.lines().collect();
            prop_assert_eq!(rejoined, original, "splitter must not lose or reorder lines");
        } else {
            prop_assert!(chunks.is_empty(), "content-free pack yields no chunks");
        }
        for chunk in &chunks {
            // Parsing a chunk must be total too (Ok or a ParseError).
            let _ = fence_ir::parser::parse_module(chunk);
        }
    }
}
