//! Integration test: the paper's Figure 2 worked example end-to-end —
//! delay-set placement needs more fences than the pruned placement, and
//! both instrumented programs still deliver MP semantics on TSO.

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::Value;
use fenceplace::{run_pipeline, PipelineConfig, Variant};
use memsim::{Simulator, ThreadSpec};

fn figure2() -> (fence_ir::Module, fence_ir::FuncId, fence_ir::FuncId) {
    let mut mb = ModuleBuilder::new("figure2");
    let x = mb.global("x", 1);
    let y = mb.global("y", 1);
    let flag = mb.global("flag", 1);

    let mut p1 = FunctionBuilder::new("p1", 0);
    p1.store(x, 1i64);
    let _ = p1.load(y);
    p1.store(flag, 1i64);
    p1.ret(None);
    let f1 = mb.add_func(p1.build());

    let mut p2 = FunctionBuilder::new("p2", 2);
    p2.store(Value::Arg(0), 7i64);
    let _ = p2.load(Value::Arg(1));
    p2.spin_while_eq(flag, 0i64);
    p2.store(y, 2i64);
    let r = p2.load(x);
    p2.ret(Some(r));
    let f2 = mb.add_func(p2.build());
    (mb.finish(), f1, f2)
}

#[test]
fn pruning_reduces_fence_count() {
    let (m, _, _) = figure2();
    let pens = run_pipeline(&m, &PipelineConfig::for_variant(Variant::Pensieve));
    let ctrl = run_pipeline(&m, &PipelineConfig::for_variant(Variant::Control));
    // Paper: 5 full fences for delay-set, 2 after pruning. Our counts
    // include the function-entry fences the modified Fang algorithm
    // places; the *reduction* is the claim under test.
    assert!(
        ctrl.report.full_fences() < pens.report.full_fences(),
        "Control {} < Pensieve {}",
        ctrl.report.full_fences(),
        pens.report.full_fences()
    );
    // Exactly one acquire: the flag spin read.
    assert_eq!(ctrl.report.acquires(), 1);
    // Pruned orderings: everything that is not (racq -> *) or (w -> racq)
    // in p2's data section disappears.
    assert!(ctrl.report.total_kept() < pens.report.total_kept());
}

#[test]
fn instrumented_mp_still_delivers() {
    let (m, f1, f2) = figure2();
    // Scratch cells for the unknown pointers *p1/*p2 of the example:
    // pass addresses beyond the globals (the heap base) — use two heap
    // words by allocating via a tiny init thread would complicate the
    // test; instead reuse y's address region (may-alias is the point).
    let layout = memsim::Layout::of(&m);
    let y_addr = layout.base(m.global_by_name("y").unwrap());
    for variant in [Variant::Pensieve, Variant::AddressControl, Variant::Control] {
        let result = run_pipeline(&m, &PipelineConfig::for_variant(variant));
        let sim = Simulator::new(&result.module);
        let run = sim
            .run(&[
                ThreadSpec {
                    func: f1,
                    args: vec![],
                },
                ThreadSpec {
                    func: f2,
                    args: vec![y_addr, y_addr],
                },
            ])
            .expect("runs");
        assert_eq!(run.retvals[1], 1, "b5 must read x = 1 under {variant:?}");
    }
}

#[test]
fn all_variants_verify_and_are_deterministic() {
    let (m, _, _) = figure2();
    for variant in Variant::automatic() {
        let r1 = run_pipeline(&m, &PipelineConfig::for_variant(variant));
        let r2 = run_pipeline(&m, &PipelineConfig::for_variant(variant));
        assert!(fence_ir::verify_module(&r1.module).is_empty());
        assert_eq!(r1.points, r2.points, "pipeline deterministic");
    }
}
