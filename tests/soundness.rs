//! Soundness: the paper's central guarantee — for well-synchronized
//! (legacy DRF) programs, the pruned fence placement still forbids every
//! non-SC outcome the hardware could otherwise produce.
//!
//! Exhaustive litmus enumeration is the oracle: outcomes of the
//! instrumented program under TSO (and the Weak model, with the Weak
//! target) must be a subset of the SC outcomes of the fence-free program.

use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::{FuncId, Module};
use fenceplace::minimize::TargetModel;
use fenceplace::{run_pipeline, PipelineConfig, Variant};
use memsim::{enumerate, LitmusModel};

/// Dekker-style flags: the outcome (1,1) — both threads enter — is the
/// SC violation TSO allows without fences.
fn dekker_litmus() -> (Module, Vec<(FuncId, Vec<i64>)>) {
    let mut mb = ModuleBuilder::new("dekker");
    let x = mb.global("x", 1);
    let y = mb.global("y", 1);
    let z = mb.global("z", 1);
    let mk = |mb: &mut ModuleBuilder, name: &str, mine, other| {
        let mut f = FunctionBuilder::new(name, 0);
        f.store(mine, 1i64);
        let o = f.load(other); // control acquire: feeds the branch below
        let free = f.eq(o, 0i64);
        let r = f.local("r");
        f.write_local(r, 0i64);
        f.if_then(free, |f| {
            f.store(z, 1i64); // touch z inside the "critical section"
            f.write_local(r, 1i64);
        });
        let rv = f.read_local(r);
        f.ret(Some(rv));
        mb.add_func(f.build())
    };
    let p0 = mk(&mut mb, "p0", x, y);
    let p1 = mk(&mut mb, "p1", y, x);
    (mb.finish(), vec![(p0, vec![]), (p1, vec![])])
}

#[test]
fn dekker_fixed_by_control_placement_on_tso() {
    let (m, threads) = dekker_litmus();
    // Unfenced TSO exhibits the violation.
    let bare = enumerate(&m, &threads, LitmusModel::Tso);
    assert!(bare.contains(&vec![1, 1]), "TSO breaks Dekker unfenced");

    // The Control pipeline detects the flag reads as acquires and places
    // w→r fences; the violation disappears.
    let placed = run_pipeline(&m, &PipelineConfig::for_variant(Variant::Control));
    let t2: Vec<(FuncId, Vec<i64>)> = threads.clone();
    let fixed = enumerate(&placed.module, &t2, LitmusModel::Tso);
    assert!(
        !fixed.contains(&vec![1, 1]),
        "Control placement restores exclusion: {fixed:?}"
    );
    // And the fenced outcomes are exactly a subset of SC outcomes.
    let sc = enumerate(&m, &threads, LitmusModel::Sc);
    for o in &fixed {
        assert!(sc.contains(o), "outcome {o:?} impossible under SC");
    }
}

/// MP with a conditional consumer: the weak model breaks it; the pipeline
/// with the Weak target model must fix it.
fn mp_litmus() -> (Module, Vec<(FuncId, Vec<i64>)>) {
    let mut mb = ModuleBuilder::new("mp");
    let data = mb.global("data", 1);
    let flag = mb.global("flag", 1);
    let mut p = FunctionBuilder::new("producer", 0);
    p.store(data, 1i64);
    p.store(flag, 1i64);
    p.ret(None);
    let pid = mb.add_func(p.build());
    let mut c = FunctionBuilder::new("consumer", 0);
    let r1 = c.load(flag); // acquire: feeds the branch
    let got = c.local("got");
    c.write_local(got, -1i64);
    let set = c.ne(r1, 0i64);
    c.if_then(set, |f| {
        let r2 = f.load(data);
        f.write_local(got, r2);
    });
    let g = c.read_local(got);
    c.ret(Some(g));
    let cid = mb.add_func(c.build());
    (mb.finish(), vec![(pid, vec![]), (cid, vec![])])
}

#[test]
fn mp_fixed_by_weak_target_placement() {
    let (m, threads) = mp_litmus();
    // The weak model allows the producer's stores to reorder: consumer
    // sees flag=1 but data=0.
    let bare = enumerate(&m, &threads, LitmusModel::Weak { window: 4 });
    assert!(
        bare.iter().any(|o| o[1] == 0),
        "weak model breaks MP unfenced: {bare:?}"
    );

    let config = PipelineConfig {
        variant: Variant::Control,
        target: TargetModel::Weak,
        parallel: false,
    };
    let placed = run_pipeline(&m, &config);
    let fixed = enumerate(&placed.module, &threads, LitmusModel::Weak { window: 4 });
    assert!(
        !fixed.iter().any(|o| o[1] == 0),
        "Weak-target placement restores MP: {fixed:?}"
    );
}

#[test]
fn tso_placement_never_adds_outcomes() {
    // For each litmus program: outcomes(instrumented, TSO) ⊆ outcomes(SC).
    for (m, threads) in [dekker_litmus(), mp_litmus()] {
        let sc = enumerate(&m, &threads, LitmusModel::Sc);
        for variant in [Variant::Pensieve, Variant::AddressControl, Variant::Control] {
            let placed = run_pipeline(&m, &PipelineConfig::for_variant(variant));
            let got = enumerate(&placed.module, &threads, LitmusModel::Tso);
            for o in &got {
                assert!(
                    sc.contains(o),
                    "{variant:?} leaves non-SC outcome {o:?} on {}",
                    m.name
                );
            }
        }
    }
}
