//! End-to-end litmus regressions for the place→certify loop: the three
//! canonical weak-memory shapes (store buffering / Dekker entry, message
//! passing) exhibit non-SC outcomes *before* placement and lose every
//! one of them *after* the pipeline has placed its fences — under both
//! hardware targets the pipeline knows how to relax (x86-TSO and the
//! bounded out-of-order weak machine).
//!
//! The sync reads are branch-shaped (the paper's *control* signature),
//! so the `Control` variant detects them and the placement is the
//! pipeline's own — no hand-placed fences anywhere.

use corpus::arbitrary::{build_sync, SyncIdiom, SyncShape};
use fence_ir::builder::{FunctionBuilder, ModuleBuilder};
use fence_ir::{FuncId, Module};
use fenceplace::{run_pipeline, PipelineConfig, TargetModel, Variant};
use memsim::{enumerate, LitmusModel};
use std::collections::BTreeSet;

const WEAK: LitmusModel = LitmusModel::Weak { window: 4 };

/// All-pairs thread groups of a two-function module, in order.
fn pair(module: &Module) -> Vec<(FuncId, Vec<i64>)> {
    let fids: Vec<FuncId> = module.iter_funcs().map(|(f, _)| f).collect();
    assert_eq!(fids.len(), 2);
    vec![(fids[0], Vec::new()), (fids[1], Vec::new())]
}

fn outcomes(module: &Module, model: LitmusModel) -> BTreeSet<Vec<i64>> {
    enumerate(module, &pair(module), model)
}

/// Places fences with the Control variant and returns the instrumented
/// module, asserting at least one full fence actually landed.
fn place(module: &Module, target: TargetModel, expect_full: bool) -> Module {
    let result = run_pipeline(
        module,
        &PipelineConfig {
            variant: Variant::Control,
            target,
            parallel: false,
        },
    );
    let placed = memsim::check::full_fence_sites(
        &result.module,
        &result
            .module
            .iter_funcs()
            .map(|(f, _)| f)
            .collect::<Vec<_>>(),
    );
    if expect_full {
        assert!(!placed.is_empty(), "placement put down no full fences");
    }
    result.module
}

/// Store buffering (the Dekker entry protocol): each thread publishes
/// its intent then reads the other's. Under SC at least one thread must
/// observe the other's store, so the both-zero outcome is forbidden;
/// TSO's store buffers (and the weak window) allow it until a w→r fence
/// lands between the store and the load.
#[test]
fn store_buffering_loses_its_relaxed_outcomes() {
    let m = build_sync(&SyncShape {
        idiom: SyncIdiom::StoreBuffering,
        n_data: 1,
        consts: vec![7],
        pad_ops: 0,
    });
    assert!(fence_ir::verify_module(&m).is_empty());
    let sc = outcomes(&m, LitmusModel::Sc);
    // Both threads returning 0 = neither saw the other's intent.
    assert!(!sc.contains(&vec![0, 0]), "SC forbids both-zero: {sc:?}");
    for (target, model) in [
        (TargetModel::X86Tso, LitmusModel::Tso),
        (TargetModel::Weak, WEAK),
    ] {
        let relaxed = outcomes(&m, model);
        assert!(
            relaxed.contains(&vec![0, 0]),
            "{model:?} pre-placement must exhibit both-zero: {relaxed:?}"
        );
        assert!(relaxed.is_superset(&sc));
        let placed = place(&m, target, true);
        let after = outcomes(&placed, model);
        assert_eq!(after, sc, "{model:?} post-placement must equal the SC set");
    }
}

/// Message passing: producer writes payload then flag; consumer branches
/// on the flag before reading the payload. TSO keeps w→w and r→r order,
/// so MP is SC-equal there even unfenced — documenting *why* the TSO
/// placement needs no full fences — while the weak machine reorders the
/// producer's stores until a fence separates payload from flag.
#[test]
fn message_passing_loses_its_relaxed_outcomes_under_weak() {
    let m = build_sync(&SyncShape {
        idiom: SyncIdiom::MessagePassing,
        n_data: 1,
        consts: vec![42],
        pad_ops: 0,
    });
    assert!(fence_ir::verify_module(&m).is_empty());
    let sc = outcomes(&m, LitmusModel::Sc);
    // Flag seen (select picks the sum) but payload stale = outcome 0.
    assert!(
        !sc.contains(&vec![0, 0]),
        "SC forbids flag-up-payload-stale: {sc:?}"
    );
    assert_eq!(
        outcomes(&m, LitmusModel::Tso),
        sc,
        "TSO preserves w→w and r→r, so unfenced MP is already SC"
    );
    let weak = outcomes(&m, WEAK);
    assert!(
        weak.contains(&vec![0, 0]),
        "weak pre-placement must exhibit stale payload: {weak:?}"
    );
    let placed = place(&m, TargetModel::Weak, true);
    assert_eq!(outcomes(&placed, WEAK), sc);
}

/// Full Dekker entry with a guarded critical section: each thread raises
/// its intent and enters (bumping a shared counter read-modify-write
/// style) only if the other's intent is down. Mutual exclusion means SC
/// never lets both threads see `taken == 0`; relaxed machines do until
/// fenced.
#[test]
fn dekker_entry_keeps_mutual_exclusion_after_placement() {
    let mut mb = ModuleBuilder::new("dekker_entry");
    let i0 = mb.global("intent0", 1);
    let i1 = mb.global("intent1", 1);
    let counter = mb.global("counter", 1);
    let mk = |mb: &mut ModuleBuilder, name: &str, own, other| {
        let mut fb = FunctionBuilder::new(name, 0);
        let got_l = fb.local("got");
        fb.store(own, 1i64);
        let seen = fb.load(other);
        let clear = fb.eq(seen, 0i64);
        fb.if_then(clear, |fb| {
            let c = fb.load(counter);
            let c1 = fb.add(c, 1i64);
            fb.store(counter, c1);
            fb.write_local(got_l, 1i64);
        });
        let got = fb.read_local(got_l);
        fb.ret(Some(got));
        mb.add_func(fb.build());
    };
    mk(&mut mb, "d0", i0, i1);
    mk(&mut mb, "d1", i1, i0);
    let m = mb.finish();
    assert!(fence_ir::verify_module(&m).is_empty());

    let sc = outcomes(&m, LitmusModel::Sc);
    assert!(
        !sc.contains(&vec![1, 1]),
        "SC never admits both threads into the critical section: {sc:?}"
    );
    for (target, model) in [
        (TargetModel::X86Tso, LitmusModel::Tso),
        (TargetModel::Weak, WEAK),
    ] {
        let relaxed = outcomes(&m, model);
        assert!(
            relaxed.contains(&vec![1, 1]),
            "{model:?} pre-placement must break mutual exclusion: {relaxed:?}"
        );
        let placed = place(&m, target, true);
        let after = outcomes(&placed, model);
        assert!(
            !after.contains(&vec![1, 1]),
            "{model:?} post-placement readmits the both-entered outcome: {after:?}"
        );
        assert!(after.is_subset(&relaxed));
    }
}
