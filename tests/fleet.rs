//! Fleet-driver equivalence and work-accounting tests.
//!
//! The fleet contract: [`run_fleet`] over many modules is **bit-identical**
//! to running [`run_pipeline_batch`] per module (sequential or parallel
//! scheduling), while executing exactly one `ModuleAnalysis` and one
//! `FuncSubstrate` build per module/function per run.

use corpus::Params;
use fenceplace::{
    run_fleet_with, run_pipeline_batch, FleetJob, PipelineConfig, TargetModel, Variant,
};

fn sweep_configs() -> Vec<PipelineConfig> {
    let mut configs = Vec::new();
    for variant in Variant::automatic() {
        for target in [
            TargetModel::X86Tso,
            TargetModel::ScHardware,
            TargetModel::Weak,
        ] {
            configs.push(PipelineConfig {
                variant,
                target,
                parallel: false,
            });
        }
    }
    configs
}

/// Golden equivalence: fleet over the full evaluation corpus (all nine
/// kernels + all seventeen programs) reproduces the per-module batch
/// loop bit-for-bit — fence points, every report counter, and the
/// instrumented module text — under sequential and pool scheduling.
#[test]
fn fleet_matches_per_module_batch_over_full_corpus() {
    let p = Params::default();
    let entries = corpus::manifest::full_fleet(&p);
    let configs = sweep_configs();
    let jobs: Vec<FleetJob<'_>> = entries
        .iter()
        .map(|e| FleetJob::new(e.name.clone(), &e.module, configs.clone()))
        .collect();

    for parallel in [false, true] {
        let (fleet, stats) = run_fleet_with(&jobs, parallel);
        assert_eq!(fleet.len(), jobs.len());
        assert_eq!(stats.modules, jobs.len());
        for (job, got) in jobs.iter().zip(&fleet) {
            let want = run_pipeline_batch(job.module, &job.configs);
            assert_eq!(want.len(), got.results.len(), "{}", job.name);
            for ((w, g), config) in want.iter().zip(&got.results).zip(&configs) {
                assert_eq!(
                    w.points, g.points,
                    "{} under {config:?} (par={parallel}): fence points diverge",
                    job.name
                );
                assert_eq!(
                    format!("{:?}", w.report),
                    format!("{:?}", g.report),
                    "{} under {config:?} (par={parallel}): report diverges",
                    job.name
                );
                assert_eq!(
                    fence_ir::printer::print_module(&w.module),
                    fence_ir::printer::print_module(&g.module),
                    "{} under {config:?} (par={parallel}): instrumented module diverges",
                    job.name
                );
            }
        }
    }
}

/// Work accounting over the full corpus: one `ModuleAnalysis` per module
/// and one substrate build per function, pinned both by the fleet's own
/// stats and by the independent thread-local counters in
/// `fence_analysis` / `fence_ir::cfg` (sequential mode, so every unit
/// runs on this thread).
#[test]
fn fleet_runs_one_analysis_and_substrate_per_module() {
    let p = Params::tiny();
    let entries = corpus::manifest::full_fleet(&p);
    let configs = sweep_configs(); // 9 configs, 3 distinct variants
    let jobs: Vec<FleetJob<'_>> = entries
        .iter()
        .map(|e| FleetJob::new(e.name.clone(), &e.module, configs.clone()))
        .collect();
    let total_funcs: usize = entries.iter().map(|e| e.module.funcs.len()).sum();

    let analyses_before = fence_analysis::analysis_runs();
    let cfg_before = fence_ir::cfg::cfg_builds();
    let reach_before = fence_ir::cfg::reachability_builds();
    let (_, stats) = run_fleet_with(&jobs, false);

    assert_eq!(stats.analyses, jobs.len(), "one analysis per module");
    assert_eq!(stats.functions, total_funcs);
    assert_eq!(stats.substrates, total_funcs, "one substrate per function");
    assert_eq!(stats.configs, jobs.len() * configs.len());
    assert_eq!(
        fence_analysis::analysis_runs() - analyses_before,
        jobs.len(),
        "independent ModuleAnalysis counter agrees"
    );
    assert_eq!(
        fence_ir::cfg::cfg_builds() - cfg_before,
        2 * total_funcs,
        "one Cfg build per function for the validation gate, one for the substrate"
    );
    assert_eq!(
        fence_ir::cfg::reachability_builds() - reach_before,
        total_funcs,
        "one Reachability build per function for the whole fleet"
    );
    // Row interning across the corpus pays: strictly fewer distinct rows
    // than intern calls (corpus kernels share CFG shapes).
    assert!(stats.unique_rows > 0);
    assert!(
        stats.row_hits > 0,
        "a 26-module corpus must share at least one reachability row"
    );
}

/// Edge cases: an empty fleet, a job with no configs at all, and an
/// all-`Manual` fleet must all short-circuit without running any
/// analysis.
#[test]
fn fleet_edge_cases() {
    let (results, stats) = run_fleet_with(&[], false);
    assert!(results.is_empty());
    assert_eq!(stats.analyses, 0);

    let p = Params::tiny();
    let entries = corpus::resolve_spec("kernel:Dekker", &p).unwrap();
    let module = &entries[0].module;

    let jobs = [FleetJob::new("no-configs", module, Vec::new())];
    let (results, stats) = run_fleet_with(&jobs, false);
    assert_eq!(results.len(), 1);
    assert!(results[0].results.is_empty());
    assert_eq!(stats.analyses, 0);
    assert_eq!(stats.configs, 0);

    let manual = [FleetJob::new(
        "manual-only",
        module,
        vec![PipelineConfig::for_variant(Variant::Manual)],
    )];
    let (results, stats) = run_fleet_with(&manual, false);
    assert_eq!(stats.analyses, 0, "Manual-only fleet never analyzes");
    assert_eq!(stats.substrates, 0);
    assert_eq!(results[0].results.len(), 1);
    assert!(results[0].results[0].points.is_empty());
}

/// A mixed fleet — modules with different config lists, including an
/// all-Manual job — keeps results aligned with each job's own configs.
#[test]
fn fleet_heterogeneous_configs() {
    let p = Params::tiny();
    let entries = corpus::resolve_specs(&["kernel:Dekker", "kernel:Peterson"], &p).unwrap();
    let jobs = [
        FleetJob::new(
            "dekker",
            &entries[0].module,
            vec![
                PipelineConfig::for_variant(Variant::Control),
                PipelineConfig::for_variant(Variant::Manual),
            ],
        ),
        FleetJob::new(
            "peterson",
            &entries[1].module,
            vec![PipelineConfig::for_variant(Variant::Pensieve)],
        ),
    ];
    let (fleet, stats) = run_fleet_with(&jobs, false);
    assert_eq!(stats.analyses, 2);
    assert_eq!(fleet[0].results.len(), 2);
    assert_eq!(fleet[1].results.len(), 1);
    for (job, fr) in jobs.iter().zip(&fleet) {
        let want = run_pipeline_batch(job.module, &job.configs);
        for (w, g) in want.iter().zip(&fr.results) {
            assert_eq!(w.points, g.points, "{}", job.name);
        }
    }
}
