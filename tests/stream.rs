//! Streamed-ingestion differential over the full evaluation fleet.
//!
//! The streaming contract ([`run_fleet_streamed`]): per-module results
//! are identical to the resident scheduler's for every admission window
//! — `window: None` bit-identical by construction (same scheduler
//! underneath), `window: Some(w)` bit-identical per module via the
//! fleet≡per-module-batch equivalence — while peak residency stays
//! bounded by the window. The `dir:`/`pack:` corpus specs round-trip
//! through [`corpus::ModuleSource`] and the [`fence_suite::stream_items`]
//! adapter into the same results.

use corpus::{ModuleSource, Params};
use fence_suite::stream_items;
use fenceplace::{
    run_fleet_opts, run_fleet_streamed, FleetJob, FleetOptions, FleetResult, PipelineConfig,
    StreamItem, TargetModel, Variant,
};
use std::path::PathBuf;

fn sweep_configs() -> Vec<PipelineConfig> {
    vec![
        PipelineConfig {
            variant: Variant::Control,
            target: TargetModel::X86Tso,
            parallel: false,
        },
        PipelineConfig {
            variant: Variant::Pensieve,
            target: TargetModel::Weak,
            parallel: false,
        },
    ]
}

/// The full fleet as (name, printed text) pairs. Streamed texts
/// round-trip through the printer and parser, which renumbers
/// instruction ids densely — so the resident baseline must run on the
/// *parsed* form of the same text, not the builder-built module.
fn fleet_texts() -> Vec<(String, String)> {
    corpus::manifest::full_fleet(&Params::tiny())
        .iter()
        .map(|e| (e.name.clone(), fence_ir::printer::print_module(&e.module)))
        .collect()
}

/// Resident baseline over parsed texts: parse everything up front, run
/// the exact resident fleet scheduler.
fn resident_baseline(
    texts: &[(String, String)],
    configs: &[PipelineConfig],
    parallel: bool,
) -> Vec<FleetResult> {
    let modules: Vec<(String, fence_ir::Module)> = texts
        .iter()
        .map(|(name, text)| {
            (
                name.clone(),
                fence_ir::parser::parse_module(text).expect("printed fleet text parses"),
            )
        })
        .collect();
    let jobs: Vec<FleetJob<'_>> = modules
        .iter()
        .map(|(name, m)| FleetJob::new(name.clone(), m, configs.to_vec()))
        .collect();
    let opts = FleetOptions {
        parallel,
        ..FleetOptions::default()
    };
    let (fleet, _) = run_fleet_opts(&jobs, &opts);
    fleet
}

fn assert_same_results(tag: &str, got: &FleetResult, want: &FleetResult) {
    assert_eq!(got.name, want.name, "{tag}: name");
    assert_eq!(
        format!("{:?}", got.outcome),
        format!("{:?}", want.outcome),
        "{tag}: outcome"
    );
    assert_eq!(got.results.len(), want.results.len(), "{tag}: result count");
    for (g, w) in got.results.iter().zip(&want.results) {
        assert_eq!(g.points, w.points, "{tag}: fence points diverge");
        assert_eq!(
            format!("{:?}", g.report),
            format!("{:?}", w.report),
            "{tag}: report diverges"
        );
    }
}

/// Runs items through the streamed scheduler, collecting deliveries by
/// admission index (the pooled windowed scheduler may deliver out of
/// order).
fn stream_collect(
    items: Vec<StreamItem>,
    configs: &[PipelineConfig],
    opts: &FleetOptions,
) -> (Vec<FleetResult>, fenceplace::FleetStats) {
    let n = items.len();
    let mut slots: Vec<Option<FleetResult>> = (0..n).map(|_| None).collect();
    let (summaries, stats) = run_fleet_streamed(items, configs, opts, |i, fr| {
        assert!(slots[i].is_none(), "slot {i} delivered twice");
        slots[i] = Some(fr);
    });
    assert_eq!(summaries.len(), n, "one summary per item");
    let results: Vec<FleetResult> = slots
        .into_iter()
        .map(|s| s.expect("every slot delivered"))
        .collect();
    for (s, fr) in summaries.iter().zip(&results) {
        assert_eq!(s.name, fr.name, "summary order mirrors admission order");
    }
    (results, stats)
}

/// The core differential: every window (including `None`) × scheduling
/// mode reproduces the resident run over the full 26-module fleet, and
/// the windowed runs pin peak residency at or below the window.
#[test]
fn streamed_fleet_matches_resident_for_every_window() {
    let texts = fleet_texts();
    assert_eq!(texts.len(), 26, "the full evaluation fleet");
    let configs = sweep_configs();

    for parallel in [false, true] {
        let baseline = resident_baseline(&texts, &configs, parallel);
        for window in [None, Some(1), Some(3)] {
            let opts = FleetOptions {
                parallel,
                window,
                ..FleetOptions::default()
            };
            let items: Vec<StreamItem> = texts
                .iter()
                .map(|(name, text)| StreamItem::Text {
                    name: name.clone(),
                    text: text.clone(),
                })
                .collect();
            let (results, stats) = stream_collect(items, &configs, &opts);
            assert_eq!(results.len(), baseline.len());
            assert_eq!(stats.modules, baseline.len());
            assert_eq!(stats.failed, 0);
            for (got, want) in results.iter().zip(&baseline) {
                let tag = format!("{} (window={window:?}, par={parallel})", want.name);
                assert_same_results(&tag, got, want);
            }
            match window {
                // Residency bounded by the window: the O(window) peak
                // memory claim, pinned on the counter.
                Some(w) => assert!(
                    stats.peak_resident_modules <= w,
                    "peak {} > window {w}",
                    stats.peak_resident_modules
                ),
                // window: None materializes the whole stream.
                None => assert_eq!(stats.peak_resident_modules, texts.len()),
            }
            assert!(stats.peak_resident_insts > 0);
        }
    }
}

/// A fresh per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fenceplace-stream-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `dir:` and `pack:` specs stream through [`ModuleSource`] and the
/// umbrella adapter into the same placements as a resident run over the
/// same texts, with load failures quarantined in place.
#[test]
fn dir_and_pack_specs_round_trip_through_the_adapter() {
    let texts: Vec<(String, String)> = fleet_texts().into_iter().take(6).collect();
    let configs = sweep_configs();
    let dir = scratch("roundtrip");

    // First half as one-module-per-file in a directory, second half
    // concatenated into a pack.
    let mod_dir = dir.join("mods");
    std::fs::create_dir_all(&mod_dir).unwrap();
    let mut expected_names = Vec::new();
    for (i, (_, text)) in texts.iter().take(3).enumerate() {
        let path = mod_dir.join(format!("m{i}.ir"));
        std::fs::write(&path, text).unwrap();
        expected_names.push(format!("file:{}", path.display()));
    }
    let pack_path = dir.join("corpus.pack");
    let mut pack = String::new();
    for (_, text) in texts.iter().skip(3) {
        pack.push_str(text);
    }
    std::fs::write(&pack_path, &pack).unwrap();
    for k in 0..3 {
        expected_names.push(format!("pack:{}#{k}", pack_path.display()));
    }

    let mut source = ModuleSource::new(Params::tiny());
    source
        .push_spec(&format!("dir:{}", mod_dir.display()))
        .unwrap();
    source
        .push_spec(&format!("pack:{}", pack_path.display()))
        .unwrap();

    let opts = FleetOptions {
        parallel: true,
        window: Some(2),
        ..FleetOptions::default()
    };
    let items: Vec<StreamItem> = stream_items(source).collect();
    let (results, stats) = stream_collect(items, &configs, &opts);
    assert_eq!(results.len(), 6);
    assert_eq!(stats.failed, 0);
    assert!(stats.peak_resident_modules <= 2);

    // Same texts, resident, with the pseudo-spec names the source used.
    let renamed: Vec<(String, String)> = expected_names
        .iter()
        .cloned()
        .zip(texts.iter().map(|(_, t)| t.clone()))
        .collect();
    let baseline = resident_baseline(&renamed, &configs, false);
    for (got, want) in results.iter().zip(&baseline) {
        assert_same_results(&format!("{} via dir/pack", want.name), got, want);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-stream failures quarantine without stalling admission: an
/// unreadable file and an unparsable text each take one `load_failed` /
/// `invalid_ir` slot while every healthy module completes.
#[test]
fn mid_stream_failures_do_not_stall_the_window() {
    let texts: Vec<(String, String)> = fleet_texts().into_iter().take(3).collect();
    let configs = sweep_configs();

    let items: Vec<StreamItem> = vec![
        StreamItem::Text {
            name: texts[0].0.clone(),
            text: texts[0].1.clone(),
        },
        StreamItem::Failed {
            name: "file:/no/such/module.ir".into(),
            error: "cannot read file:/no/such/module.ir".into(),
        },
        StreamItem::Text {
            name: "garbage".into(),
            text: "this is not IR at all\n".into(),
        },
        StreamItem::Text {
            name: texts[1].0.clone(),
            text: texts[1].1.clone(),
        },
        StreamItem::Text {
            name: texts[2].0.clone(),
            text: texts[2].1.clone(),
        },
    ];

    let opts = FleetOptions {
        parallel: true,
        window: Some(2),
        ..FleetOptions::default()
    };
    let (results, stats) = stream_collect(items, &configs, &opts);
    assert_eq!(stats.modules, 5);
    assert_eq!(stats.failed, 2);
    assert_eq!(results[1].outcome.kind(), "load_failed");
    assert_eq!(results[2].outcome.kind(), "invalid_ir");
    assert!(
        results[2].outcome.to_string().contains("parse error"),
        "{:?}",
        results[2].outcome
    );

    let baseline = resident_baseline(&texts, &configs, false);
    for (got, want) in [&results[0], &results[3], &results[4]]
        .into_iter()
        .zip(&baseline)
    {
        assert_same_results(&format!("{} with sick neighbors", want.name), got, want);
    }
}
