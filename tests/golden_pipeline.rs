//! Golden equivalence test for the analysis hot-path rearchitecture.
//!
//! `tests/golden/pipeline.txt` records, for every corpus program and
//! Table II kernel, under every automatic [`Variant`] and every
//! [`TargetModel`], the exact fence points (count + order-sensitive hash)
//! and every per-function `ModuleReport` counter, as produced by the
//! *seed* implementation (naive whole-module points-to fixpoint, O(A²)
//! pair materialization, per-block DFS reachability). The optimized
//! implementations must reproduce these outputs bit-for-bit, sequential
//! and parallel.
//!
//! Regenerate (only legitimate when intentionally changing semantics):
//! `GOLDEN_REGEN=1 cargo test --test golden_pipeline`.

use corpus::Params;
use fenceplace::{run_pipeline, PipelineConfig, PipelineResult, TargetModel, Variant};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/pipeline.txt";

fn target_name(t: TargetModel) -> &'static str {
    match t {
        TargetModel::X86Tso => "x86tso",
        TargetModel::ScHardware => "sc",
        TargetModel::Weak => "weak",
    }
}

/// Order-sensitive FNV-1a hash of the fence-point list.
fn points_hash(r: &PipelineResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for p in &r.points {
        mix(p.func.index() as u64);
        mix(p.block.index() as u64);
        mix(p.gap as u64);
        mix(matches!(p.kind, fence_ir::FenceKind::Full) as u64);
    }
    h
}

fn snapshot_one(label: &str, module: &fence_ir::Module, out: &mut String) {
    for variant in Variant::automatic() {
        for target in [
            TargetModel::X86Tso,
            TargetModel::ScHardware,
            TargetModel::Weak,
        ] {
            let seq = run_pipeline(
                module,
                &PipelineConfig {
                    variant,
                    target,
                    parallel: false,
                },
            );
            let par = run_pipeline(
                module,
                &PipelineConfig {
                    variant,
                    target,
                    parallel: true,
                },
            );
            assert_eq!(
                seq.points,
                par.points,
                "{label}/{}/{}: parallel fence points diverge from sequential",
                variant.name(),
                target_name(target)
            );
            assert_eq!(
                format!("{:?}", seq.report),
                format!("{:?}", par.report),
                "{label}/{}/{}: parallel report diverges from sequential",
                variant.name(),
                target_name(target)
            );

            let key = format!("{label}|{}|{}", variant.name(), target_name(target));
            writeln!(
                out,
                "{key}|points={}|phash={:016x}",
                seq.points.len(),
                points_hash(&seq)
            )
            .unwrap();
            for f in &seq.report.funcs {
                writeln!(
                    out,
                    "{key}|fn={}|er={}|ew={}|acq={}|ctrl={}|addr={}|pure={}|ot={:?}|ok={:?}|full={}|dir={}",
                    f.name,
                    f.escaping_reads,
                    f.escaping_writes,
                    f.acquires,
                    f.control_acquires,
                    f.address_acquires,
                    f.pure_address_acquires,
                    f.orderings_total,
                    f.orderings_kept,
                    f.full_fences,
                    f.compiler_fences
                )
                .unwrap();
            }
        }
    }
}

fn full_snapshot() -> String {
    let mut out = String::new();
    for kernel in corpus::kernels::all() {
        snapshot_one(&format!("kernel:{}", kernel.name), &kernel.module, &mut out);
    }
    for params in [Params::tiny(), Params::default()] {
        for prog in corpus::programs(&params) {
            snapshot_one(
                &format!("corpus:{}@s{}", prog.name, params.scale),
                &prog.module,
                &mut out,
            );
        }
    }
    out
}

#[test]
fn pipeline_outputs_match_seed_golden() {
    let snapshot = full_snapshot();
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &snapshot).unwrap();
        eprintln!(
            "regenerated {GOLDEN_PATH} ({} lines)",
            snapshot.lines().count()
        );
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run GOLDEN_REGEN=1 cargo test --test golden_pipeline");
    if golden == snapshot {
        return;
    }
    // Pinpoint the first divergence instead of dumping both files.
    for (i, (g, s)) in golden.lines().zip(snapshot.lines()).enumerate() {
        assert_eq!(g, s, "first divergence at golden line {}", i + 1);
    }
    assert_eq!(
        golden.lines().count(),
        snapshot.lines().count(),
        "snapshot line count changed"
    );
}
