#!/usr/bin/env bash
# Perf gate: re-measures the per-stage analysis snapshot and fails if any
# stage's corpus-wide total regressed more than TOLERANCE x against the
# committed BENCH_analysis.json.
#
# Usage: scripts/perf_gate.sh [TOLERANCE]   (default 1.5)
#
# Wired into CI as a non-blocking job: the 1-core shared runner is noisy,
# so a red perf gate is a signal to investigate, not an automatic block.
# Exit codes: 0 ok, 1 regression, 2 missing/unparseable baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-1.5}"

cargo run --release -p fence_bench --bin perf_snapshot -- --check --tolerance "$TOLERANCE"
