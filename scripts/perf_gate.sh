#!/usr/bin/env bash
# Perf gate: re-measures the per-stage analysis snapshot and fails if any
# stage's corpus-wide total regressed more than TOLERANCE x against the
# committed BENCH_analysis.json.
#
# Usage: scripts/perf_gate.sh [TOLERANCE]   (default 1.5)
#
# Wired into CI as a blocking job: the tolerance absorbs 1-core runner
# noise, and anything beyond it blocks the merge. On failure the
# per-stage baseline/fresh/ratio table is replayed to stderr so the
# regressing stage is visible straight from the job summary, without
# digging through the full log.
# Exit codes: 0 ok, 1 regression, 2 missing/unparseable baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-1.5}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

status=0
cargo run --release -p fence_bench --bin perf_snapshot -- --check --tolerance "$TOLERANCE" \
    | tee "$OUT" || status=$?

if [ "$status" -ne 0 ]; then
    {
        echo
        echo "perf gate FAILED (tolerance ${TOLERANCE}x) — per-stage ratios:"
        # Replay the measurement table: its header plus every stage row.
        grep -E '^(stage[[:space:]]|[a-z_]+[[:space:]]+[0-9])' "$OUT" || true
    } >&2
fi
exit "$status"
