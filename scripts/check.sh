#!/usr/bin/env bash
# Tier-1 gate, split into stages so local use and the CI jobs in
# .github/workflows/ci.yml share one source of truth.
#
# Usage: scripts/check.sh [STAGE]...
#
#   build    cargo build --release
#   test     cargo test -q
#   clippy   cargo clippy --all-targets -- -D warnings
#   fmt      cargo fmt --check
#   lint     clippy + fmt
#   docs     cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) + cargo test --doc
#   bench    cargo bench --no-run (compile smoke for every bench harness)
#   faults   cargo test --features faultinject (fault-injection matrix)
#   certify  litmus regressions + differential certify fuzz + CLI smoke
#   stream   streamed-vs-resident differential + CLI --stream smoke
#   serve    service suite (protocol contract + cache pins) + daemon smoke
#   all      every stage above, in CI order (the default)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_build() {
  echo "== cargo build --release =="
  cargo build --release
}

stage_test() {
  echo "== cargo test -q =="
  cargo test -q
}

stage_clippy() {
  echo "== cargo clippy --all-targets -- -D warnings =="
  cargo clippy --all-targets -- -D warnings
}

stage_fmt() {
  echo "== cargo fmt --check =="
  cargo fmt --check
}

stage_docs() {
  echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) =="
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

  echo "== cargo test --doc =="
  cargo test -q --doc
}

stage_bench() {
  echo "== cargo bench --no-run =="
  cargo bench --no-run
}

stage_faults() {
  echo "== cargo test --features faultinject (fault matrix) =="
  cargo test -q -p fence-suite --features faultinject --test faults
  cargo test -q -p fenceplace --features faultinject --lib
}

stage_certify() {
  echo "== litmus regressions + certify fuzz =="
  cargo test -q -p fence-suite --test litmus_pipeline --test certify_fuzz

  echo "== fenceplace --certify smoke (corpus, Control:x86tso) =="
  # Bounded state budget keeps the smoke fast; inconclusive/skipped
  # certifications exit 0, an unsound one exits 2 and fails the stage.
  cargo run --release --quiet --bin fenceplace -- \
    --program 'corpus:*' --config Control:x86tso \
    --certify-states 50000 --seq
}

stage_stream() {
  echo "== streamed-vs-resident differential =="
  cargo test -q -p fence-suite --test stream

  echo "== fenceplace --stream smoke (kernels, windowed) =="
  # Windowed streaming over the built-in kernels must complete cleanly;
  # any quarantined module or unsound certification exits 2 and fails
  # the stage.
  cargo run --release --quiet --bin fenceplace -- \
    --program 'kernel:*' --config Control:x86tso --config Pensieve:weak \
    --stream --window 4
}

stage_serve() {
  echo "== service suite (protocol contract, service≡CLI differential, cache pins) =="
  cargo test -q -p fence-suite --test service

  echo "== serve daemon smoke (cold corpus, warm --expect-hit corpus, shutdown) =="
  # Start a daemon, run the full corpus through it twice — the second
  # pass must be served entirely from cache — then shut it down cleanly.
  serve_dir="$(mktemp -d)"
  serve_sock="$serve_dir/fenceplace.sock"
  cargo build --release --quiet --bin fenceplace
  ./target/release/fenceplace serve --socket "$serve_sock" &
  serve_daemon=$!
  trap 'kill "$serve_daemon" 2>/dev/null || true; rm -rf "$serve_dir"' EXIT
  for _ in $(seq 1 100); do
    [ -S "$serve_sock" ] && break
    sleep 0.1
  done
  [ -S "$serve_sock" ] || { echo "daemon never bound $serve_sock" >&2; exit 1; }

  ./target/release/fenceplace client --socket "$serve_sock" \
    --program 'kernel:*' --program 'corpus:*' --config Control:x86tso
  ./target/release/fenceplace client --socket "$serve_sock" \
    --program 'kernel:*' --program 'corpus:*' --config Control:x86tso \
    --expect-hit
  ./target/release/fenceplace client --socket "$serve_sock" --shutdown
  wait "$serve_daemon"
  [ ! -e "$serve_sock" ] || { echo "daemon left its socket file behind" >&2; exit 1; }
  rm -rf "$serve_dir"
  trap - EXIT
}

run_stage() {
  case "$1" in
    build)  stage_build ;;
    test)   stage_test ;;
    clippy) stage_clippy ;;
    fmt)    stage_fmt ;;
    lint)   stage_clippy; stage_fmt ;;
    docs)   stage_docs ;;
    bench)  stage_bench ;;
    faults) stage_faults ;;
    certify) stage_certify ;;
    stream) stage_stream ;;
    serve)  stage_serve ;;
    all)    stage_build; stage_test; stage_clippy; stage_fmt; stage_docs; stage_bench; stage_faults; stage_certify; stage_stream; stage_serve ;;
    *)
      echo "unknown stage '$1' (build|test|clippy|fmt|lint|docs|bench|faults|certify|stream|serve|all)" >&2
      exit 2
      ;;
  esac
}

if [ "$#" -eq 0 ]; then
  set -- all
fi
for stage in "$@"; do
  run_stage "$stage"
done

echo "tier-1 OK ($*)"
