#!/usr/bin/env bash
# Tier-1 gate, split into stages so local use and the CI jobs in
# .github/workflows/ci.yml share one source of truth.
#
# Usage: scripts/check.sh [STAGE]...
#
#   build    cargo build --release
#   test     cargo test -q
#   clippy   cargo clippy --all-targets -- -D warnings
#   fmt      cargo fmt --check
#   lint     clippy + fmt
#   docs     cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) + cargo test --doc
#   bench    cargo bench --no-run (compile smoke for every bench harness)
#   faults   cargo test --features faultinject (fault-injection matrix)
#   all      every stage above, in CI order (the default)
set -euo pipefail
cd "$(dirname "$0")/.."

stage_build() {
  echo "== cargo build --release =="
  cargo build --release
}

stage_test() {
  echo "== cargo test -q =="
  cargo test -q
}

stage_clippy() {
  echo "== cargo clippy --all-targets -- -D warnings =="
  cargo clippy --all-targets -- -D warnings
}

stage_fmt() {
  echo "== cargo fmt --check =="
  cargo fmt --check
}

stage_docs() {
  echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) =="
  RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

  echo "== cargo test --doc =="
  cargo test -q --doc
}

stage_bench() {
  echo "== cargo bench --no-run =="
  cargo bench --no-run
}

stage_faults() {
  echo "== cargo test --features faultinject (fault matrix) =="
  cargo test -q -p fence-suite --features faultinject --test faults
  cargo test -q -p fenceplace --features faultinject --lib
}

run_stage() {
  case "$1" in
    build)  stage_build ;;
    test)   stage_test ;;
    clippy) stage_clippy ;;
    fmt)    stage_fmt ;;
    lint)   stage_clippy; stage_fmt ;;
    docs)   stage_docs ;;
    bench)  stage_bench ;;
    faults) stage_faults ;;
    all)    stage_build; stage_test; stage_clippy; stage_fmt; stage_docs; stage_bench; stage_faults ;;
    *)
      echo "unknown stage '$1' (build|test|clippy|fmt|lint|docs|bench|faults|all)" >&2
      exit 2
      ;;
  esac
}

if [ "$#" -eq 0 ]; then
  set -- all
fi
for stage in "$@"; do
  run_stage "$stage"
done

echo "tier-1 OK ($*)"
