#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in the order the CI
# driver runs it. Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test -q =="
cargo test -q

echo "== cargo clippy --all-targets -- -D warnings =="
cargo clippy --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo doc --no-deps (RUSTDOCFLAGS=-D warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "== cargo test --doc =="
cargo test -q --doc

echo "tier-1 OK"
